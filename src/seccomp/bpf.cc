#include "seccomp/bpf.hh"

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cstring>
#include <set>

#include "support/logging.hh"
#include "support/metrics.hh"

// The decoded core dispatches on one byte per instruction; with GNU
// labels-as-values the dispatch becomes a single indirect jump per
// instruction (one BTB entry per opcode site instead of a shared
// switch), which is worth ~10-20% on long filters.
#if defined(__GNUC__) || defined(__clang__)
#define DRACO_BPF_COMPUTED_GOTO 1
#endif

namespace draco::seccomp {

BpfInsn
stmt(uint16_t code, uint32_t k)
{
    return BpfInsn{code, 0, 0, k};
}

BpfInsn
jump(uint16_t code, uint32_t k, uint8_t jt, uint8_t jf)
{
    return BpfInsn{code, jt, jf, k};
}

BpfProgram::BpfProgram(std::vector<BpfInsn> insns)
    : _insns(std::move(insns))
{
}

namespace {

constexpr uint16_t kClassMask = 0x07;

bool
isValidSeccompLoad(const BpfInsn &insn, bool isLdx, std::string *error)
{
    uint16_t mode = insn.code & 0xe0;
    uint16_t size = insn.code & 0x18;
    if (mode == op::ABS) {
        // Classic BPF has no LDX|ABS form (linux/filter.h only defines
        // ABS for LD); accepting it here used to alias it onto the
        // scratch-memory load with an unchecked k up to 60 — an
        // out-of-bounds read past mem[16].
        if (isLdx) {
            if (error)
                *error = "LDX has no ABS addressing mode";
            return false;
        }
        if (size != op::W) {
            if (error)
                *error = "ABS load must be word-sized";
            return false;
        }
        if (insn.k % 4 != 0 || insn.k + 4 > sizeof(os::SeccompData)) {
            if (error)
                *error = "ABS load offset out of seccomp_data bounds";
            return false;
        }
        return true;
    }
    if (mode == op::IMM || mode == op::LEN)
        return true;
    if (mode == op::MEM) {
        if (insn.k >= kBpfMemWords) {
            if (error)
                *error = "MEM load index out of range";
            return false;
        }
        return true;
    }
    if (error)
        *error = "load mode not permitted by seccomp";
    return false;
}

// Process-wide compile()-outcome tallies. Relaxed atomics: these are
// monotonic scoreboard counters, never used for synchronization.
struct CompileCounters {
    std::atomic<uint64_t> shape[3] = {};
    std::atomic<uint64_t> exec[3] = {};
};

CompileCounters &
compileCounters()
{
    static CompileCounters counters;
    return counters;
}

} // namespace

const char *
bpfShapeName(BpfShape shape)
{
    switch (shape) {
      case BpfShape::General: return "general";
      case BpfShape::Chain: return "chain";
      case BpfShape::Tree: return "tree";
    }
    return "?";
}

const char *
bpfExecutorName(BpfExecutor executor)
{
    switch (executor) {
      case BpfExecutor::Decoded: return "decoded";
      case BpfExecutor::DenseTable: return "dense";
      case BpfExecutor::RangeSearch: return "ranges";
    }
    return "?";
}

void
exportBpfCompileMetrics(MetricRegistry &registry, const std::string &prefix)
{
    auto &counters = compileCounters();
    auto shapeOf = [&](BpfShape shape) {
        return counters.shape[static_cast<size_t>(shape)].load(
            std::memory_order_relaxed);
    };
    auto execOf = [&](BpfExecutor executor) {
        return counters.exec[static_cast<size_t>(executor)].load(
            std::memory_order_relaxed);
    };
    for (BpfShape shape :
         {BpfShape::General, BpfShape::Chain, BpfShape::Tree}) {
        registry.setCounter(
            MetricRegistry::join(prefix,
                                 std::string("shape.") + bpfShapeName(shape)),
            shapeOf(shape));
    }
    for (BpfExecutor executor : {BpfExecutor::Decoded, BpfExecutor::DenseTable,
                                 BpfExecutor::RangeSearch}) {
        registry.setCounter(
            MetricRegistry::join(
                prefix, std::string("exec.") + bpfExecutorName(executor)),
            execOf(executor));
    }
}

bool
BpfProgram::validate(std::string *error) const
{
    auto fail = [&](const std::string &msg, size_t pc) {
        if (error)
            *error = "insn " + std::to_string(pc) + ": " + msg;
        return false;
    };

    if (_insns.empty()) {
        if (error)
            *error = "empty program";
        return false;
    }
    if (_insns.size() > kBpfMaxInsns) {
        if (error)
            *error = "program exceeds BPF_MAXINSNS";
        return false;
    }

    for (size_t pc = 0; pc < _insns.size(); ++pc) {
        const BpfInsn &insn = _insns[pc];
        std::string sub;
        switch (insn.code & kClassMask) {
          case op::LD:
          case op::LDX:
            if (!isValidSeccompLoad(insn, (insn.code & kClassMask) == op::LDX,
                                    &sub)) {
                return fail(sub, pc);
            }
            break;
          case op::ST:
          case op::STX:
            if (insn.k >= kBpfMemWords)
                return fail("store index out of range", pc);
            break;
          case op::ALU: {
            uint16_t aluOp = insn.code & 0xf0;
            if (aluOp > op::XOR)
                return fail("unknown ALU op", pc);
            bool srcIsK = (insn.code & op::X) == 0;
            if ((aluOp == op::DIV || aluOp == op::MOD) && srcIsK &&
                insn.k == 0) {
                return fail("constant division by zero", pc);
            }
            break;
          }
          case op::JMP: {
            uint16_t jop = insn.code & 0xf0;
            if (jop != op::JA && jop != op::JEQ && jop != op::JGT &&
                jop != op::JGE && jop != op::JSET) {
                return fail("unknown jump op", pc);
            }
            // Seccomp only allows forward jumps that stay in bounds.
            size_t maxOff = jop == op::JA
                ? insn.k
                : std::max<uint32_t>(insn.jt, insn.jf);
            if (pc + 1 + maxOff >= _insns.size())
                return fail("jump target out of bounds", pc);
            break;
          }
          case op::RET:
            break;
          case op::MISC: {
            uint16_t mop = insn.code & 0xf8;
            if (mop != op::TAX && mop != op::TXA)
                return fail("unknown MISC op", pc);
            break;
          }
          default:
            return fail("unknown instruction class", pc);
        }
    }

    // The last reachable instruction must be a RET; since all jumps are
    // forward and bounded, requiring the final instruction to be RET
    // guarantees termination with a result.
    if ((_insns.back().code & kClassMask) != op::RET)
        return fail("program must end with RET", _insns.size() - 1);

    return true;
}

bool
BpfProgram::compile(std::string *error)
{
    if (!validate(error))
        return false;

    using Op = BpfDecodedInsn::Op;
    std::vector<BpfDecodedInsn> decoded;
    decoded.reserve(_insns.size());

    for (const BpfInsn &insn : _insns) {
        BpfDecodedInsn out;
        out.jt = insn.jt;
        out.jf = insn.jf;
        out.k = insn.k;
        uint16_t cls = insn.code & kClassMask;
        uint16_t mode = insn.code & 0xe0;
        bool srcX = (insn.code & op::X) != 0;
        switch (cls) {
          case op::LD:
            out.op = mode == op::ABS ? Op::LdAbs
                : mode == op::IMM    ? Op::LdImm
                : mode == op::LEN    ? Op::LdLen
                                     : Op::LdMem;
            break;
          case op::LDX:
            out.op = mode == op::IMM ? Op::LdxImm
                : mode == op::LEN    ? Op::LdxLen
                                     : Op::LdxMem;
            break;
          case op::ST:
            out.op = Op::St;
            break;
          case op::STX:
            out.op = Op::Stx;
            break;
          case op::ALU:
            switch (insn.code & 0xf0) {
              case op::ADD: out.op = srcX ? Op::AluAddX : Op::AluAddK; break;
              case op::SUB: out.op = srcX ? Op::AluSubX : Op::AluSubK; break;
              case op::MUL: out.op = srcX ? Op::AluMulX : Op::AluMulK; break;
              case op::DIV: out.op = srcX ? Op::AluDivX : Op::AluDivK; break;
              case op::MOD: out.op = srcX ? Op::AluModX : Op::AluModK; break;
              case op::OR:  out.op = srcX ? Op::AluOrX  : Op::AluOrK;  break;
              case op::AND: out.op = srcX ? Op::AluAndX : Op::AluAndK; break;
              case op::XOR: out.op = srcX ? Op::AluXorX : Op::AluXorK; break;
              case op::LSH:
                out.op = srcX ? Op::AluLshX : Op::AluLshK;
                // Constant over-shifts always yield 0 (see run()):
                // strength-reduce to a masked clear.
                if (!srcX && insn.k >= 32) {
                    out.op = Op::AluAndK;
                    out.k = 0;
                }
                break;
              case op::RSH:
                out.op = srcX ? Op::AluRshX : Op::AluRshK;
                if (!srcX && insn.k >= 32) {
                    out.op = Op::AluAndK;
                    out.k = 0;
                }
                break;
              case op::NEG: out.op = Op::AluNeg; break;
            }
            break;
          case op::JMP:
            switch (insn.code & 0xf0) {
              case op::JA:   out.op = Op::Ja; break;
              case op::JEQ:  out.op = srcX ? Op::JeqX  : Op::JeqK;  break;
              case op::JGT:  out.op = srcX ? Op::JgtX  : Op::JgtK;  break;
              case op::JGE:  out.op = srcX ? Op::JgeX  : Op::JgeK;  break;
              case op::JSET: out.op = srcX ? Op::JsetX : Op::JsetK; break;
            }
            break;
          case op::RET:
            out.op = (insn.code & 0x18) == op::A ? Op::RetA : Op::RetK;
            break;
          case op::MISC:
            out.op = (insn.code & 0xf8) == op::TAX ? Op::Tax : Op::Txa;
            break;
        }
        decoded.push_back(out);
    }

    _decoded = std::move(decoded);
    specialize();

    auto &counters = compileCounters();
    counters.shape[static_cast<size_t>(_shape)].fetch_add(
        1, std::memory_order_relaxed);
    counters.exec[static_cast<size_t>(_executor)].fetch_add(
        1, std::memory_order_relaxed);
    return true;
}

namespace {

/**
 * Abstract value classes tracked by the compile-time pre-execution in
 * specialize(). Concrete values are fully known; Nr is the untouched
 * syscall number (pure, so JEQ/JGT/JGE against constants stay monotone
 * between range boundaries); Derived mixes nr into arithmetic (correct
 * for the pre-run's exact nr only); ArchOther is the unknown arch word
 * on the guard-mismatch path (only provably != the guard constant).
 */
enum class Taint : uint8_t { Concrete, Nr, Derived, ArchOther };

} // namespace

void
BpfProgram::specialize()
{
    using Op = BpfDecodedInsn::Op;

    _shape = BpfShape::General;
    _executor = BpfExecutor::Decoded;
    _hasArchGuard = false;
    _archK = 0;
    _archFail = NrEntry{};
    _table.clear();
    _tableLimit = 0;
    _rangeStart.clear();
    _rangeEntry.clear();

    // Arch-guard prefix the filter builder always emits:
    //   ld [arch]; jeq #NATIVE, +a, +b
    // Detecting it lets pre-runs resolve later arch loads to the guard
    // constant; run() gates the tables on data.arch at dispatch time.
    if (_decoded.size() >= 2 && _decoded[0].op == Op::LdAbs &&
        _decoded[0].k == os::sd_off::arch && _decoded[1].op == Op::JeqK) {
        _hasArchGuard = true;
        _archK = _decoded[1].k;
    }

    // Syntactic shape: classify by the conditional mix, skipping the
    // guard comparison itself (every filter-builder program has one).
    // Only comparisons against the syscall number feed maxK and the
    // range boundaries: argument-rule bodies compare A against raw
    // argument constants (flag masks, fd numbers) that say nothing
    // about how the nr domain partitions and would blow the dense cap.
    // The linear accInfluencedByNr scan is a heuristic, not a proof —
    // it ignores control flow — but boundary choice only affects which
    // intervals collapse to Slow: every emitted entry is still
    // validated by its own interval-safe pre-run below.
    bool onlyJeq = true;
    bool onlyCmpK = true;
    uint32_t maxK = 0;
    bool anyCmp = false;
    bool accInfluencedByNr = false;
    std::set<uint32_t> bounds;
    bounds.insert(0);
    for (size_t pc = 0; pc < _decoded.size(); ++pc) {
        switch (_decoded[pc].op) {
          case Op::LdAbs:
            accInfluencedByNr = _decoded[pc].k == os::sd_off::nr;
            break;
          case Op::LdImm:
          case Op::LdLen:
          case Op::LdMem:
          case Op::Txa:
          case Op::AluAddK:
          case Op::AluSubK:
          case Op::AluMulK:
          case Op::AluDivK:
          case Op::AluModK:
          case Op::AluOrK:
          case Op::AluAndK:
          case Op::AluXorK:
          case Op::AluLshK:
          case Op::AluRshK:
          case Op::AluAddX:
          case Op::AluSubX:
          case Op::AluMulX:
          case Op::AluDivX:
          case Op::AluModX:
          case Op::AluOrX:
          case Op::AluAndX:
          case Op::AluXorX:
          case Op::AluLshX:
          case Op::AluRshX:
          case Op::AluNeg:
            accInfluencedByNr = false;
            break;
          case Op::JeqK:
          case Op::JgtK:
          case Op::JgeK: {
            if (_hasArchGuard && pc == 1)
                break;
            if (_decoded[pc].op != Op::JeqK)
                onlyJeq = false;
            if (!accInfluencedByNr)
                break;
            uint32_t k = _decoded[pc].k;
            anyCmp = true;
            maxK = std::max(maxK, k);
            // Monotone comparisons change direction at k (JGE/JEQ) or
            // k+1 (JGT/JEQ); both are boundaries.
            bounds.insert(k);
            if (k != UINT32_MAX)
                bounds.insert(k + 1);
            break;
          }
          case Op::JsetK:
          case Op::JeqX:
          case Op::JgtX:
          case Op::JgeX:
          case Op::JsetX:
            onlyJeq = false;
            onlyCmpK = false;
            break;
          default:
            break;
        }
    }
    if (!onlyCmpK)
        return; // General: the decoded dispatcher handles it.
    _shape = onlyJeq ? BpfShape::Chain : BpfShape::Tree;

    // Pre-execute the program for a concrete syscall number. Everything
    // stays concrete until the first load of an unknown seccomp_data
    // offset; that load's pc becomes the Resume point (the start of an
    // argument-checking rule body). The result is an NrEntry plus a
    // flag saying whether the run is valid for a whole nr interval.
    struct Pre {
        NrEntry entry;
        bool intervalSafe = true;
    };

    auto aluK = [](Op o, uint32_t a, uint32_t k) -> uint32_t {
        switch (o) {
          case Op::AluAddK: return a + k;
          case Op::AluSubK: return a - k;
          case Op::AluMulK: return a * k;
          case Op::AluDivK: return a / k; // k!=0 validated
          case Op::AluModK: return a % k; // k!=0 validated
          case Op::AluOrK: return a | k;
          case Op::AluAndK: return a & k;
          case Op::AluXorK: return a ^ k;
          case Op::AluLshK: return a << k; // k<32 after compile
          case Op::AluRshK: return a >> k; // k<32 after compile
          default: panic("specialize: not an ALU-K op");
        }
    };
    auto aluX = [](Op o, uint32_t a, uint32_t x) -> uint32_t {
        switch (o) {
          case Op::AluAddX: return a + x;
          case Op::AluSubX: return a - x;
          case Op::AluMulX: return a * x;
          case Op::AluDivX: return x == 0 ? 0 : a / x;
          case Op::AluModX: return x == 0 ? 0 : a % x;
          case Op::AluOrX: return a | x;
          case Op::AluAndX: return a & x;
          case Op::AluXorX: return a ^ x;
          case Op::AluLshX: return x < 32 ? a << x : 0;
          case Op::AluRshX: return x < 32 ? a >> x : 0;
          default: panic("specialize: not an ALU-X op");
        }
    };

    auto preRun = [&](uint32_t nr, bool archMatches) -> Pre {
        uint32_t acc = 0;
        uint32_t idx = 0;
        uint32_t mem[kBpfMemWords] = {};
        Taint accT = Taint::Concrete;
        Taint idxT = Taint::Concrete;
        Taint memT[kBpfMemWords];
        std::fill(std::begin(memT), std::end(memT), Taint::Concrete);

        Pre out;
        size_t pc = 0;
        uint32_t count = 0;
        // Slow is universally valid (full decoded re-run), so bailing
        // out is always sound — just not fast.
        auto slow = [&]() -> Pre {
            return Pre{NrEntry{}, true};
        };

        // Forward-only jumps: pc strictly increases, so the walk ends
        // within size() steps.
        for (size_t steps = 0; steps < _decoded.size(); ++steps) {
            const BpfDecodedInsn &insn = _decoded[pc];
            ++count;
            switch (insn.op) {
              case Op::LdAbs:
                if (insn.k == os::sd_off::nr && archMatches) {
                    acc = nr;
                    accT = Taint::Nr;
                } else if (insn.k == os::sd_off::arch && _hasArchGuard &&
                           archMatches) {
                    acc = _archK;
                    accT = Taint::Concrete;
                } else if (insn.k == os::sd_off::arch && _hasArchGuard) {
                    acc = 0; // Value unknown; only != _archK is known.
                    accT = Taint::ArchOther;
                } else {
                    // Unknown input word: stop and resume here. The
                    // decoded core restarts with acc=0/idx=0/mem zeroed
                    // (this load overwrites acc), so the live state
                    // must match that — otherwise fall back to Slow.
                    bool clean = idx == 0 && idxT == Taint::Concrete;
                    for (unsigned i = 0; clean && i < kBpfMemWords; ++i)
                        clean = mem[i] == 0 && memT[i] == Taint::Concrete;
                    if (!clean)
                        return slow();
                    out.entry.kind = NrEntry::Kind::Resume;
                    out.entry.value = static_cast<uint32_t>(pc);
                    out.entry.count = count - 1;
                    return out;
                }
                break;
              case Op::LdImm: acc = insn.k; accT = Taint::Concrete; break;
              case Op::LdLen:
                acc = sizeof(os::SeccompData);
                accT = Taint::Concrete;
                break;
              case Op::LdMem: acc = mem[insn.k]; accT = memT[insn.k]; break;
              case Op::LdxImm: idx = insn.k; idxT = Taint::Concrete; break;
              case Op::LdxLen:
                idx = sizeof(os::SeccompData);
                idxT = Taint::Concrete;
                break;
              case Op::LdxMem: idx = mem[insn.k]; idxT = memT[insn.k]; break;
              case Op::St: mem[insn.k] = acc; memT[insn.k] = accT; break;
              case Op::Stx: mem[insn.k] = idx; memT[insn.k] = idxT; break;
              case Op::AluAddK:
              case Op::AluSubK:
              case Op::AluMulK:
              case Op::AluDivK:
              case Op::AluModK:
              case Op::AluOrK:
              case Op::AluAndK:
              case Op::AluXorK:
              case Op::AluLshK:
              case Op::AluRshK:
                if (accT == Taint::ArchOther)
                    return slow();
                acc = aluK(insn.op, acc, insn.k);
                if (accT != Taint::Concrete)
                    accT = Taint::Derived;
                break;
              case Op::AluAddX:
              case Op::AluSubX:
              case Op::AluMulX:
              case Op::AluDivX:
              case Op::AluModX:
              case Op::AluOrX:
              case Op::AluAndX:
              case Op::AluXorX:
              case Op::AluLshX:
              case Op::AluRshX:
                if (accT == Taint::ArchOther || idxT == Taint::ArchOther)
                    return slow();
                acc = aluX(insn.op, acc, idx);
                accT = accT == Taint::Concrete && idxT == Taint::Concrete
                    ? Taint::Concrete
                    : Taint::Derived;
                break;
              case Op::AluNeg:
                if (accT == Taint::ArchOther)
                    return slow();
                acc = static_cast<uint32_t>(-static_cast<int32_t>(acc));
                if (accT != Taint::Concrete)
                    accT = Taint::Derived;
                break;
              case Op::Ja:
                pc += insn.k;
                break;
              case Op::JeqK:
              case Op::JgtK:
              case Op::JgeK:
              case Op::JsetK:
              case Op::JeqX:
              case Op::JgtX:
              case Op::JgeX:
              case Op::JsetX: {
                bool srcX = insn.op >= Op::JeqX;
                uint32_t src = srcX ? idx : insn.k;
                Taint srcT = srcX ? idxT : Taint::Concrete;
                if (accT == Taint::ArchOther) {
                    // On the mismatch path arch != _archK by
                    // assumption, so only that equality resolves.
                    if (insn.op == Op::JeqK && insn.k == _archK) {
                        pc += insn.jf;
                        break;
                    }
                    return slow();
                }
                if (srcT == Taint::ArchOther)
                    return slow();
                bool taken;
                switch (insn.op) {
                  case Op::JeqK:
                  case Op::JeqX: taken = acc == src; break;
                  case Op::JgtK:
                  case Op::JgtX: taken = acc > src; break;
                  case Op::JgeK:
                  case Op::JgeX: taken = acc >= src; break;
                  default: taken = (acc & src) != 0; break;
                }
                // Interval safety: the branch direction must be
                // uniform across the whole nr interval. JEQ/JGT/JGE
                // against a constant are monotone in nr between range
                // boundaries; anything else taken on a nr-dependent
                // value pins the result to this exact nr.
                bool nrMonotone = !srcX && insn.op != Op::JsetK &&
                                  accT == Taint::Nr;
                bool concreteCond =
                    accT == Taint::Concrete && srcT == Taint::Concrete;
                if (!concreteCond && !nrMonotone)
                    out.intervalSafe = false;
                pc += taken ? insn.jt : insn.jf;
                break;
              }
              case Op::RetK:
                out.entry.kind = NrEntry::Kind::Terminal;
                out.entry.value = insn.k;
                out.entry.count = count;
                return out;
              case Op::RetA:
                if (accT == Taint::ArchOther)
                    return slow();
                out.entry.kind = NrEntry::Kind::Terminal;
                out.entry.value = acc;
                out.entry.count = count;
                if (accT != Taint::Concrete)
                    out.intervalSafe = false;
                return out;
              case Op::Tax: idx = acc; idxT = accT; break;
              case Op::Txa: acc = idx; accT = idxT; break;
            }
            ++pc;
        }
        panic("BpfProgram::specialize: pre-run did not terminate");
    };

    // One pre-run on the guard-mismatch path covers every (nr, arch !=
    // _archK) input: the nr load (if reached) becomes a Resume, which
    // is exact for any data, and a Terminal is only reached through
    // concrete or guard-resolved conditionals.
    if (_hasArchGuard)
        _archFail = preRun(0, false).entry;

    auto useful = [](const std::vector<NrEntry> &entries) {
        // The tier must beat the decoded core on some input: either a
        // precomputed verdict or a resume that actually skips work.
        for (const NrEntry &e : entries) {
            if (e.kind == NrEntry::Kind::Terminal)
                return true;
            if (e.kind == NrEntry::Kind::Resume && e.value > 0)
                return true;
        }
        return false;
    };

    // Chains index a dense (nr -> verdict) table when the comparison
    // constants are small enough; everything else (trees, huge-K
    // chains) takes the sorted-range binary search.
    constexpr uint32_t kDenseCap = 4096;
    if (_shape == BpfShape::Chain && (!anyCmp || maxK < kDenseCap)) {
        uint32_t limit = anyCmp ? maxK + 1 : 0;
        std::vector<NrEntry> table(static_cast<size_t>(limit) + 1);
        for (uint32_t nr = 0; nr < limit; ++nr)
            table[nr] = preRun(nr, true).entry; // Exact per-nr slots.
        // Slot `limit` covers every nr >= limit: above the largest
        // comparison constant every JEQ is false and JGT/JGE true, so
        // one interval-safe pre-run stands in for all of them.
        Pre def = preRun(limit, true);
        table[limit] = def.intervalSafe ? def.entry : NrEntry{};
        if (useful(table)) {
            _table = std::move(table);
            _tableLimit = limit;
            _executor = BpfExecutor::DenseTable;
            return;
        }
    }

    std::vector<uint32_t> starts;
    std::vector<NrEntry> entries;
    for (uint32_t b : bounds) {
        Pre r = preRun(b, true);
        NrEntry e = r.intervalSafe ? r.entry : NrEntry{};
        if (!entries.empty() && entries.back() == e)
            continue; // Merge adjacent identical ranges.
        starts.push_back(b);
        entries.push_back(e);
    }
    if (useful(entries)) {
        _rangeStart = std::move(starts);
        _rangeEntry = std::move(entries);
        _executor = BpfExecutor::RangeSearch;
    }
}

BpfResult
BpfProgram::run(const os::SeccompData &data) const
{
    if (_decoded.empty())
        return runInterpreted(data);

    if (_executor != BpfExecutor::Decoded) {
        const NrEntry *entry;
        if (_hasArchGuard && data.arch != _archK) {
            entry = &_archFail;
        } else if (_executor == BpfExecutor::DenseTable) {
            entry = &_table[data.nr < _tableLimit ? data.nr : _tableLimit];
        } else {
            // Branch-free binary search for the last range whose start
            // is <= nr (starts[0] == 0, so it always exists). The
            // conditional move keeps the loop pattern-free for the
            // branch predictor regardless of the nr mix.
            const uint32_t *starts = _rangeStart.data();
            size_t n = _rangeStart.size();
            size_t lo = 0;
            for (size_t step = std::bit_ceil(n) >> 1; step != 0; step >>= 1) {
                size_t cand = lo + step;
                lo = cand < n && starts[cand] <= data.nr ? cand : lo;
            }
            entry = &_rangeEntry[lo];
        }
        switch (entry->kind) {
          case NrEntry::Kind::Terminal:
            return BpfResult{entry->value, entry->count};
          case NrEntry::Kind::Resume:
            return runDecodedFrom(entry->value, 0, entry->count, data);
          case NrEntry::Kind::Slow:
            break;
        }
    }
    return runDecodedFrom(0, 0, 0, data);
}

BpfResult
BpfProgram::runDecoded(const os::SeccompData &data) const
{
    if (_decoded.empty())
        panic("BpfProgram::runDecoded on uncompiled program");
    return runDecodedFrom(0, 0, 0, data);
}

BpfResult
BpfProgram::runDecodedFrom(size_t pc, uint32_t acc, uint64_t executed,
                           const os::SeccompData &data) const
{
    using Op = BpfDecodedInsn::Op;
    uint32_t idx = 0;
    uint32_t mem[kBpfMemWords] = {};
    const auto *bytes = reinterpret_cast<const uint8_t *>(&data);

    // The validator guarantees every jump lands in bounds and every
    // path terminates in RET, so the loop needs no pc bounds check.
    const BpfDecodedInsn *insn = _decoded.data() + pc;

#if DRACO_BPF_COMPUTED_GOTO
    // Order must match BpfDecodedInsn::Op exactly.
    static const void *const kDispatch[] = {
        &&doLdAbs, &&doLdImm, &&doLdLen, &&doLdMem,
        &&doLdxImm, &&doLdxLen, &&doLdxMem,
        &&doSt, &&doStx,
        &&doAluAddK, &&doAluSubK, &&doAluMulK, &&doAluDivK, &&doAluModK,
        &&doAluOrK, &&doAluAndK, &&doAluXorK, &&doAluLshK, &&doAluRshK,
        &&doAluAddX, &&doAluSubX, &&doAluMulX, &&doAluDivX, &&doAluModX,
        &&doAluOrX, &&doAluAndX, &&doAluXorX, &&doAluLshX, &&doAluRshX,
        &&doAluNeg,
        &&doJa, &&doJeqK, &&doJgtK, &&doJgeK, &&doJsetK,
        &&doJeqX, &&doJgtX, &&doJgeX, &&doJsetX,
        &&doRetK, &&doRetA, &&doTax, &&doTxa,
    };
    static_assert(std::size(kDispatch) == static_cast<size_t>(Op::Txa) + 1,
                  "dispatch table out of sync with BpfDecodedInsn::Op");

#define DRACO_BPF_DISPATCH() \
    do { \
        ++executed; \
        goto *kDispatch[static_cast<size_t>(insn->op)]; \
    } while (0)
#define DRACO_BPF_NEXT() \
    do { \
        ++insn; \
        DRACO_BPF_DISPATCH(); \
    } while (0)

    DRACO_BPF_DISPATCH();

doLdAbs: std::memcpy(&acc, bytes + insn->k, 4); DRACO_BPF_NEXT();
doLdImm: acc = insn->k; DRACO_BPF_NEXT();
doLdLen: acc = sizeof(os::SeccompData); DRACO_BPF_NEXT();
doLdMem: acc = mem[insn->k]; DRACO_BPF_NEXT();
doLdxImm: idx = insn->k; DRACO_BPF_NEXT();
doLdxLen: idx = sizeof(os::SeccompData); DRACO_BPF_NEXT();
doLdxMem: idx = mem[insn->k]; DRACO_BPF_NEXT();
doSt: mem[insn->k] = acc; DRACO_BPF_NEXT();
doStx: mem[insn->k] = idx; DRACO_BPF_NEXT();
doAluAddK: acc += insn->k; DRACO_BPF_NEXT();
doAluSubK: acc -= insn->k; DRACO_BPF_NEXT();
doAluMulK: acc *= insn->k; DRACO_BPF_NEXT();
doAluDivK: acc /= insn->k; DRACO_BPF_NEXT(); // k!=0 validated
doAluModK: acc %= insn->k; DRACO_BPF_NEXT(); // k!=0 validated
doAluOrK: acc |= insn->k; DRACO_BPF_NEXT();
doAluAndK: acc &= insn->k; DRACO_BPF_NEXT();
doAluXorK: acc ^= insn->k; DRACO_BPF_NEXT();
doAluLshK: acc <<= insn->k; DRACO_BPF_NEXT(); // k<32 after compile
doAluRshK: acc >>= insn->k; DRACO_BPF_NEXT(); // k<32 after compile
doAluAddX: acc += idx; DRACO_BPF_NEXT();
doAluSubX: acc -= idx; DRACO_BPF_NEXT();
doAluMulX: acc *= idx; DRACO_BPF_NEXT();
doAluDivX: acc = idx == 0 ? 0 : acc / idx; DRACO_BPF_NEXT();
doAluModX: acc = idx == 0 ? 0 : acc % idx; DRACO_BPF_NEXT();
doAluOrX: acc |= idx; DRACO_BPF_NEXT();
doAluAndX: acc &= idx; DRACO_BPF_NEXT();
doAluXorX: acc ^= idx; DRACO_BPF_NEXT();
doAluLshX: acc = idx < 32 ? acc << idx : 0; DRACO_BPF_NEXT();
doAluRshX: acc = idx < 32 ? acc >> idx : 0; DRACO_BPF_NEXT();
doAluNeg:
    acc = static_cast<uint32_t>(-static_cast<int32_t>(acc));
    DRACO_BPF_NEXT();
doJa: insn += insn->k; DRACO_BPF_NEXT();
doJeqK: insn += acc == insn->k ? insn->jt : insn->jf; DRACO_BPF_NEXT();
doJgtK: insn += acc > insn->k ? insn->jt : insn->jf; DRACO_BPF_NEXT();
doJgeK: insn += acc >= insn->k ? insn->jt : insn->jf; DRACO_BPF_NEXT();
doJsetK:
    insn += (acc & insn->k) != 0 ? insn->jt : insn->jf;
    DRACO_BPF_NEXT();
doJeqX: insn += acc == idx ? insn->jt : insn->jf; DRACO_BPF_NEXT();
doJgtX: insn += acc > idx ? insn->jt : insn->jf; DRACO_BPF_NEXT();
doJgeX: insn += acc >= idx ? insn->jt : insn->jf; DRACO_BPF_NEXT();
doJsetX:
    insn += (acc & idx) != 0 ? insn->jt : insn->jf;
    DRACO_BPF_NEXT();
doRetK: return BpfResult{insn->k, executed};
doRetA: return BpfResult{acc, executed};
doTax: idx = acc; DRACO_BPF_NEXT();
doTxa: acc = idx; DRACO_BPF_NEXT();

#undef DRACO_BPF_NEXT
#undef DRACO_BPF_DISPATCH
#else
    for (;;) {
        ++executed;
        switch (insn->op) {
          case Op::LdAbs: std::memcpy(&acc, bytes + insn->k, 4); break;
          case Op::LdImm: acc = insn->k; break;
          case Op::LdLen: acc = sizeof(os::SeccompData); break;
          case Op::LdMem: acc = mem[insn->k]; break;
          case Op::LdxImm: idx = insn->k; break;
          case Op::LdxLen: idx = sizeof(os::SeccompData); break;
          case Op::LdxMem: idx = mem[insn->k]; break;
          case Op::St: mem[insn->k] = acc; break;
          case Op::Stx: mem[insn->k] = idx; break;
          case Op::AluAddK: acc += insn->k; break;
          case Op::AluSubK: acc -= insn->k; break;
          case Op::AluMulK: acc *= insn->k; break;
          case Op::AluDivK: acc /= insn->k; break; // k!=0 validated
          case Op::AluModK: acc %= insn->k; break; // k!=0 validated
          case Op::AluOrK: acc |= insn->k; break;
          case Op::AluAndK: acc &= insn->k; break;
          case Op::AluXorK: acc ^= insn->k; break;
          case Op::AluLshK: acc <<= insn->k; break; // k<32 after compile
          case Op::AluRshK: acc >>= insn->k; break; // k<32 after compile
          case Op::AluAddX: acc += idx; break;
          case Op::AluSubX: acc -= idx; break;
          case Op::AluMulX: acc *= idx; break;
          case Op::AluDivX: acc = idx == 0 ? 0 : acc / idx; break;
          case Op::AluModX: acc = idx == 0 ? 0 : acc % idx; break;
          case Op::AluOrX: acc |= idx; break;
          case Op::AluAndX: acc &= idx; break;
          case Op::AluXorX: acc ^= idx; break;
          case Op::AluLshX: acc = idx < 32 ? acc << idx : 0; break;
          case Op::AluRshX: acc = idx < 32 ? acc >> idx : 0; break;
          case Op::AluNeg:
            acc = static_cast<uint32_t>(-static_cast<int32_t>(acc));
            break;
          case Op::Ja: insn += insn->k; break;
          case Op::JeqK: insn += acc == insn->k ? insn->jt : insn->jf; break;
          case Op::JgtK: insn += acc > insn->k ? insn->jt : insn->jf; break;
          case Op::JgeK: insn += acc >= insn->k ? insn->jt : insn->jf; break;
          case Op::JsetK:
            insn += (acc & insn->k) != 0 ? insn->jt : insn->jf;
            break;
          case Op::JeqX: insn += acc == idx ? insn->jt : insn->jf; break;
          case Op::JgtX: insn += acc > idx ? insn->jt : insn->jf; break;
          case Op::JgeX: insn += acc >= idx ? insn->jt : insn->jf; break;
          case Op::JsetX:
            insn += (acc & idx) != 0 ? insn->jt : insn->jf;
            break;
          case Op::RetK: return BpfResult{insn->k, executed};
          case Op::RetA: return BpfResult{acc, executed};
          case Op::Tax: idx = acc; break;
          case Op::Txa: acc = idx; break;
        }
        ++insn;
    }
#endif
}

BpfResult
BpfProgram::runInterpreted(const os::SeccompData &data) const
{
    if (_insns.empty())
        panic("BpfProgram::run on empty program");

    uint32_t acc = 0;
    uint32_t idx = 0;
    uint32_t mem[kBpfMemWords] = {};
    const auto *bytes = reinterpret_cast<const uint8_t *>(&data);

    BpfResult result;
    size_t pc = 0;
    while (pc < _insns.size()) {
        const BpfInsn &insn = _insns[pc];
        ++result.insnsExecuted;
        uint16_t cls = insn.code & kClassMask;
        switch (cls) {
          case op::LD: {
            uint16_t mode = insn.code & 0xe0;
            if (mode == op::ABS) {
                uint32_t w;
                std::memcpy(&w, bytes + insn.k, 4);
                acc = w;
            } else if (mode == op::IMM) {
                acc = insn.k;
            } else if (mode == op::LEN) {
                acc = sizeof(os::SeccompData);
            } else { // MEM
                acc = mem[insn.k];
            }
            break;
          }
          case op::LDX: {
            uint16_t mode = insn.code & 0xe0;
            if (mode == op::IMM)
                idx = insn.k;
            else if (mode == op::LEN)
                idx = sizeof(os::SeccompData);
            else // MEM
                idx = mem[insn.k];
            break;
          }
          case op::ST:
            mem[insn.k] = acc;
            break;
          case op::STX:
            mem[insn.k] = idx;
            break;
          case op::ALU: {
            uint32_t src = (insn.code & op::X) ? idx : insn.k;
            switch (insn.code & 0xf0) {
              case op::ADD: acc += src; break;
              case op::SUB: acc -= src; break;
              case op::MUL: acc *= src; break;
              case op::DIV:
                acc = src == 0 ? 0 : acc / src;
                break;
              case op::MOD:
                acc = src == 0 ? 0 : acc % src;
                break;
              case op::OR: acc |= src; break;
              case op::AND: acc &= src; break;
              case op::XOR: acc ^= src; break;
              case op::LSH: acc = src < 32 ? acc << src : 0; break;
              case op::RSH: acc = src < 32 ? acc >> src : 0; break;
              case op::NEG: acc = static_cast<uint32_t>(-static_cast<int32_t>(acc)); break;
              default:
                panic("BpfProgram::run: unvalidated ALU op");
            }
            break;
          }
          case op::JMP: {
            uint16_t jop = insn.code & 0xf0;
            if (jop == op::JA) {
                pc += insn.k;
                break;
            }
            uint32_t src = (insn.code & op::X) ? idx : insn.k;
            bool taken = false;
            switch (jop) {
              case op::JEQ: taken = acc == src; break;
              case op::JGT: taken = acc > src; break;
              case op::JGE: taken = acc >= src; break;
              case op::JSET: taken = (acc & src) != 0; break;
              default:
                panic("BpfProgram::run: unvalidated jump op");
            }
            pc += taken ? insn.jt : insn.jf;
            break;
          }
          case op::RET: {
            uint16_t rsrc = insn.code & 0x18;
            result.action = rsrc == op::A ? acc : insn.k;
            return result;
          }
          case op::MISC:
            if ((insn.code & 0xf8) == op::TAX)
                idx = acc;
            else
                acc = idx;
            break;
          default:
            panic("BpfProgram::run: unvalidated instruction class");
        }
        ++pc;
    }
    panic("BpfProgram::run: fell off the end of a validated program");
}

std::string
BpfProgram::disassemble() const
{
    std::string out;
    char buf[128];
    for (size_t pc = 0; pc < _insns.size(); ++pc) {
        const BpfInsn &insn = _insns[pc];
        const char *mnemonic = "?";
        switch (insn.code & kClassMask) {
          case op::LD: mnemonic = "ld"; break;
          case op::LDX: mnemonic = "ldx"; break;
          case op::ST: mnemonic = "st"; break;
          case op::STX: mnemonic = "stx"; break;
          case op::ALU: mnemonic = "alu"; break;
          case op::JMP: mnemonic = "jmp"; break;
          case op::RET: mnemonic = "ret"; break;
          case op::MISC: mnemonic = "misc"; break;
        }
        std::snprintf(buf, sizeof(buf),
                      "%4zu: %-4s code=0x%04x jt=%u jf=%u k=0x%08x\n", pc,
                      mnemonic, insn.code, insn.jt, insn.jf, insn.k);
        out += buf;
    }
    return out;
}

} // namespace draco::seccomp
