/**
 * @file
 * Built-in real-world Seccomp profiles (§II-C).
 *
 * docker-default models the Moby project's default container profile: it
 * allows the large majority of syscalls, denies a fixed list of ~45
 * dangerous ones (module loading, kexec, ptrace, mount, ...), and checks
 * argument values only on `personality` and `clone` — 7 unique values in
 * total, matching the paper's characterization. The gVisor and
 * Firecracker profiles model those systems' much smaller whitelists (74
 * syscalls / 130 argument checks and 37 syscalls / 8 argument checks
 * respectively); their exact syscall choices are representative rather
 * than bit-exact copies of the upstream sources.
 */

#ifndef DRACO_SECCOMP_PROFILES_BUILTIN_HH
#define DRACO_SECCOMP_PROFILES_BUILTIN_HH

#include "seccomp/profile.hh"

namespace draco::seccomp {

/** @return An empty profile whose deny action is Allow (Seccomp off). */
Profile insecureProfile();

/** @return The Docker/Moby default container profile. */
Profile dockerDefaultProfile();

/** @return A gVisor-host-filter-sized profile (74 sids, 130 checks). */
Profile gvisorProfile();

/** @return A Firecracker-sized microVM profile (37 sids, 8 checks). */
Profile firecrackerProfile();

/** @return The syscall names docker-default denies (for tests/docs). */
const std::vector<std::string> &dockerDeniedNames();

} // namespace draco::seccomp

#endif // DRACO_SECCOMP_PROFILES_BUILTIN_HH
