/**
 * @file
 * Classic BPF (cBPF) instruction set, validator, and interpreter.
 *
 * Linux Seccomp filters are classic-BPF programs executed against the
 * 64-byte seccomp_data block (§II-B). This module implements the cBPF
 * machine — accumulator A, index register X, 16 scratch words — with the
 * same instruction restrictions the kernel's seccomp verifier imposes
 * (forward jumps only, aligned in-bounds loads, mandatory RET
 * termination). The interpreter counts executed instructions so the
 * timing model can price a filter run for both the JIT'd and the
 * interpreted kernel generations.
 */

#ifndef DRACO_SECCOMP_BPF_HH
#define DRACO_SECCOMP_BPF_HH

#include <cstdint>
#include <string>
#include <vector>

#include "os/seccomp_abi.hh"

namespace draco {
class MetricRegistry;
}

namespace draco::seccomp {

/** One classic-BPF instruction, laid out like struct sock_filter. */
struct BpfInsn {
    uint16_t code = 0; ///< Opcode: class | size/op | mode/src.
    uint8_t jt = 0;    ///< Relative jump offset when true.
    uint8_t jf = 0;    ///< Relative jump offset when false.
    uint32_t k = 0;    ///< Immediate / offset operand.
};

/** Opcode fields (values from linux/filter.h). */
namespace op {
// Instruction classes.
inline constexpr uint16_t LD = 0x00;
inline constexpr uint16_t LDX = 0x01;
inline constexpr uint16_t ST = 0x02;
inline constexpr uint16_t STX = 0x03;
inline constexpr uint16_t ALU = 0x04;
inline constexpr uint16_t JMP = 0x05;
inline constexpr uint16_t RET = 0x06;
inline constexpr uint16_t MISC = 0x07;

// Load sizes.
inline constexpr uint16_t W = 0x00;
inline constexpr uint16_t H = 0x08;
inline constexpr uint16_t B = 0x10;

// Load modes.
inline constexpr uint16_t IMM = 0x00;
inline constexpr uint16_t ABS = 0x20;
inline constexpr uint16_t IND = 0x40;
inline constexpr uint16_t MEM = 0x60;
inline constexpr uint16_t LEN = 0x80;

// ALU operations.
inline constexpr uint16_t ADD = 0x00;
inline constexpr uint16_t SUB = 0x10;
inline constexpr uint16_t MUL = 0x20;
inline constexpr uint16_t DIV = 0x30;
inline constexpr uint16_t OR = 0x40;
inline constexpr uint16_t AND = 0x50;
inline constexpr uint16_t LSH = 0x60;
inline constexpr uint16_t RSH = 0x70;
inline constexpr uint16_t NEG = 0x80;
inline constexpr uint16_t MOD = 0x90;
inline constexpr uint16_t XOR = 0xa0;

// Jump kinds.
inline constexpr uint16_t JA = 0x00;
inline constexpr uint16_t JEQ = 0x10;
inline constexpr uint16_t JGT = 0x20;
inline constexpr uint16_t JGE = 0x30;
inline constexpr uint16_t JSET = 0x40;

// Operand source.
inline constexpr uint16_t K = 0x00;
inline constexpr uint16_t X = 0x08;

// Return value source.
inline constexpr uint16_t A = 0x10;

// MISC ops.
inline constexpr uint16_t TAX = 0x00;
inline constexpr uint16_t TXA = 0x80;
} // namespace op

/** Number of scratch memory words in the cBPF machine. */
inline constexpr unsigned kBpfMemWords = 16;

/** Maximum program length enforced by the kernel (BPF_MAXINSNS). */
inline constexpr size_t kBpfMaxInsns = 4096;

/** Assembly helpers for building instructions. */
BpfInsn stmt(uint16_t code, uint32_t k);
BpfInsn jump(uint16_t code, uint32_t k, uint8_t jt, uint8_t jf);

/** Result of executing a filter. */
struct BpfResult {
    uint32_t action = 0;       ///< Raw SECCOMP_RET_* value.
    uint64_t insnsExecuted = 0; ///< Dynamic instruction count.
};

/**
 * One pre-decoded instruction of a compiled program.
 *
 * compile() lowers every validated BpfInsn into this dense form: the
 * opcode masks are resolved into a single enumerator, constant shifts
 * are strength-reduced, and every load offset / memory index / jump
 * target has already passed the verifier — so the fast interpreter
 * dispatches on one byte and never re-checks bounds or opcodes.
 */
struct BpfDecodedInsn {
    enum class Op : uint8_t {
        LdAbs, LdImm, LdLen, LdMem,
        LdxImm, LdxLen, LdxMem,
        St, Stx,
        AluAddK, AluSubK, AluMulK, AluDivK, AluModK,
        AluOrK, AluAndK, AluXorK, AluLshK, AluRshK,
        AluAddX, AluSubX, AluMulX, AluDivX, AluModX,
        AluOrX, AluAndX, AluXorX, AluLshX, AluRshX,
        AluNeg,
        Ja, JeqK, JgtK, JgeK, JsetK, JeqX, JgtX, JgeX, JsetX,
        RetK, RetA, Tax, Txa,
    };

    Op op;
    uint8_t jt = 0; ///< Relative offset when the condition holds.
    uint8_t jf = 0; ///< Relative offset when it does not.
    uint32_t k = 0; ///< Immediate / pre-checked offset or index.
};

/**
 * Syntactic filter shape recognized by compile() (DESIGN.md §12).
 *
 * The dispatch region of a seccomp filter — the conditionals that test
 * the loaded syscall number — falls into a few stereotyped shapes:
 * libseccomp-style linear if-chains (every conditional a JEQ against a
 * constant), balanced binary search trees (JGE/JGT bisection over
 * sorted IDs), and everything else. The first two lower into
 * specialized executors; General programs run on the decoded
 * dispatcher.
 */
enum class BpfShape : uint8_t {
    General, ///< Anything the recognizer cannot prove chain/tree.
    Chain,   ///< All conditionals are JEQ-immediate (linear if-chain).
    Tree,    ///< JEQ/JGT/JGE-immediate only (binary-tree dispatch).
};

/** Execution tier compile() selected for run(). */
enum class BpfExecutor : uint8_t {
    Decoded,     ///< Pre-decoded array dispatcher (the general tier).
    DenseTable,  ///< Dense (nr → verdict) per-syscall dispatch table.
    RangeSearch, ///< Branch-free binary search over sorted nr ranges.
};

/** @return Stable lowercase name of @p shape ("chain", ...). */
const char *bpfShapeName(BpfShape shape);

/** @return Stable lowercase name of @p executor ("dense", ...). */
const char *bpfExecutorName(BpfExecutor executor);

/**
 * Export the process-wide compile()-outcome counters under
 * `<prefix>.shape.{chain,tree,general}` and
 * `<prefix>.exec.{dense,ranges,decoded}` — the scoreboard bench/hotpath
 * and CI use to assert the specialized tiers actually engaged.
 */
void exportBpfCompileMetrics(MetricRegistry &registry,
                             const std::string &prefix);

/**
 * A validated classic-BPF program.
 */
class BpfProgram
{
  public:
    /** Construct an empty (invalid) program. */
    BpfProgram() = default;

    /**
     * Construct from raw instructions.
     *
     * Call validate() before running; run() panics on invalid programs.
     */
    explicit BpfProgram(std::vector<BpfInsn> insns);

    /**
     * Check the program against the seccomp verifier rules: bounded
     * length, known opcodes, in-range forward jumps, in-bounds aligned
     * ABS loads, every path ending in RET.
     *
     * @param error Receives a description of the first violation.
     * @return true when the program is acceptable.
     */
    bool validate(std::string *error = nullptr) const;

    /**
     * Pre-decode the program for the fast interpreter.
     *
     * Validates, then lowers each instruction into a BpfDecodedInsn so
     * run() can dispatch without per-instruction bounds or opcode
     * re-checks. Compilation happens automatically for every program
     * the filter builder emits; call it manually only on hand-rolled
     * instruction vectors.
     *
     * @param error Receives the validator's message on failure.
     * @return true when the program validated and compiled.
     */
    bool compile(std::string *error = nullptr);

    /** @return true once compile() has succeeded. */
    bool compiled() const { return !_decoded.empty(); }

    /**
     * Execute the filter over @p data.
     *
     * Dispatches to the specialized executor compile() selected (dense
     * table or range search), falling back to the decoded dispatcher
     * for General programs and to runInterpreted() when uncompiled.
     * All tiers return bit-identical actions AND identical dynamic
     * instruction counts — the count is what the timing model prices,
     * so the specialized tiers replay the exact count the decoded walk
     * would have executed.
     *
     * @param data The seccomp_data block for the pending system call.
     * @return Final action and dynamic instruction count.
     */
    BpfResult run(const os::SeccompData &data) const;

    /**
     * Execute on the pre-decoded array dispatcher, bypassing any
     * specialized executor. The middle equivalence tier: differential
     * tests assert runInterpreted() == runDecoded() == run(). Panics
     * if the program is not compiled.
     */
    BpfResult runDecoded(const os::SeccompData &data) const;

    /**
     * Execute via the reference interpreter, which re-derives opcode
     * fields on every instruction. Kept as the semantic baseline the
     * compiled fast path is equivalence-tested against.
     */
    BpfResult runInterpreted(const os::SeccompData &data) const;

    /** @return The recognized filter shape (General until compile()). */
    BpfShape shape() const { return _shape; }

    /** @return The execution tier run() uses (Decoded until compile()). */
    BpfExecutor executor() const { return _executor; }

    /** @return Static instruction count. */
    size_t size() const { return _insns.size(); }

    /** @return true if the program has at least one instruction. */
    bool empty() const { return _insns.empty(); }

    /** @return The instruction vector. */
    const std::vector<BpfInsn> &insns() const { return _insns; }

    /** @return A human-readable disassembly (one insn per line). */
    std::string disassemble() const;

  private:
    /**
     * One precomputed verdict slot of a specialized executor.
     *
     * compile() pre-executes the dispatch region for a concrete
     * syscall number (everything is concrete until the first load of
     * an unknown seccomp_data offset), so a slot either carries the
     * final verdict outright or the program counter where the decoded
     * core must resume (the start of an argument-checking rule body).
     */
    struct NrEntry {
        enum class Kind : uint8_t {
            Terminal, ///< value = final action; count = insns executed.
            Resume,   ///< value = resume pc; count = insns before it.
            Slow,     ///< Re-run the decoded dispatcher from pc 0.
        };
        Kind kind = Kind::Slow;
        uint32_t value = 0;
        uint32_t count = 0;

        bool operator==(const NrEntry &) const = default;
    };

    /** Decoded-core run from @p pc with live acc/count (resume path). */
    BpfResult runDecodedFrom(size_t pc, uint32_t acc, uint64_t executed,
                             const os::SeccompData &data) const;

    /** Shape recognizer + executor lowering; called by compile(). */
    void specialize();

    std::vector<BpfInsn> _insns;
    std::vector<BpfDecodedInsn> _decoded; ///< Empty until compile().

    BpfShape _shape = BpfShape::General;
    BpfExecutor _executor = BpfExecutor::Decoded;

    // Architecture-guard gate: when _hasArchGuard, the specialized
    // tables assume data.arch == _archK; a mismatch takes the
    // precomputed _archFail verdict (or the decoded core when the
    // mismatch path was not provably constant).
    bool _hasArchGuard = false;
    uint32_t _archK = 0;
    NrEntry _archFail;

    // DenseTable tier: _table[min(nr, _tableLimit)]; slots below
    // _tableLimit are exact per-nr pre-runs, slot _tableLimit covers
    // every nr ≥ _tableLimit (Slow when not provably uniform).
    std::vector<NrEntry> _table;
    uint32_t _tableLimit = 0;

    // RangeSearch tier: _rangeEntry[i] covers nr ∈ [_rangeStart[i],
    // _rangeStart[i+1]); the last range extends to UINT32_MAX.
    std::vector<uint32_t> _rangeStart;
    std::vector<NrEntry> _rangeEntry;
};

} // namespace draco::seccomp

#endif // DRACO_SECCOMP_BPF_HH
