/**
 * @file
 * Classic BPF (cBPF) instruction set, validator, and interpreter.
 *
 * Linux Seccomp filters are classic-BPF programs executed against the
 * 64-byte seccomp_data block (§II-B). This module implements the cBPF
 * machine — accumulator A, index register X, 16 scratch words — with the
 * same instruction restrictions the kernel's seccomp verifier imposes
 * (forward jumps only, aligned in-bounds loads, mandatory RET
 * termination). The interpreter counts executed instructions so the
 * timing model can price a filter run for both the JIT'd and the
 * interpreted kernel generations.
 */

#ifndef DRACO_SECCOMP_BPF_HH
#define DRACO_SECCOMP_BPF_HH

#include <cstdint>
#include <string>
#include <vector>

#include "os/seccomp_abi.hh"

namespace draco::seccomp {

/** One classic-BPF instruction, laid out like struct sock_filter. */
struct BpfInsn {
    uint16_t code = 0; ///< Opcode: class | size/op | mode/src.
    uint8_t jt = 0;    ///< Relative jump offset when true.
    uint8_t jf = 0;    ///< Relative jump offset when false.
    uint32_t k = 0;    ///< Immediate / offset operand.
};

/** Opcode fields (values from linux/filter.h). */
namespace op {
// Instruction classes.
inline constexpr uint16_t LD = 0x00;
inline constexpr uint16_t LDX = 0x01;
inline constexpr uint16_t ST = 0x02;
inline constexpr uint16_t STX = 0x03;
inline constexpr uint16_t ALU = 0x04;
inline constexpr uint16_t JMP = 0x05;
inline constexpr uint16_t RET = 0x06;
inline constexpr uint16_t MISC = 0x07;

// Load sizes.
inline constexpr uint16_t W = 0x00;
inline constexpr uint16_t H = 0x08;
inline constexpr uint16_t B = 0x10;

// Load modes.
inline constexpr uint16_t IMM = 0x00;
inline constexpr uint16_t ABS = 0x20;
inline constexpr uint16_t IND = 0x40;
inline constexpr uint16_t MEM = 0x60;
inline constexpr uint16_t LEN = 0x80;

// ALU operations.
inline constexpr uint16_t ADD = 0x00;
inline constexpr uint16_t SUB = 0x10;
inline constexpr uint16_t MUL = 0x20;
inline constexpr uint16_t DIV = 0x30;
inline constexpr uint16_t OR = 0x40;
inline constexpr uint16_t AND = 0x50;
inline constexpr uint16_t LSH = 0x60;
inline constexpr uint16_t RSH = 0x70;
inline constexpr uint16_t NEG = 0x80;
inline constexpr uint16_t MOD = 0x90;
inline constexpr uint16_t XOR = 0xa0;

// Jump kinds.
inline constexpr uint16_t JA = 0x00;
inline constexpr uint16_t JEQ = 0x10;
inline constexpr uint16_t JGT = 0x20;
inline constexpr uint16_t JGE = 0x30;
inline constexpr uint16_t JSET = 0x40;

// Operand source.
inline constexpr uint16_t K = 0x00;
inline constexpr uint16_t X = 0x08;

// Return value source.
inline constexpr uint16_t A = 0x10;

// MISC ops.
inline constexpr uint16_t TAX = 0x00;
inline constexpr uint16_t TXA = 0x80;
} // namespace op

/** Number of scratch memory words in the cBPF machine. */
inline constexpr unsigned kBpfMemWords = 16;

/** Maximum program length enforced by the kernel (BPF_MAXINSNS). */
inline constexpr size_t kBpfMaxInsns = 4096;

/** Assembly helpers for building instructions. */
BpfInsn stmt(uint16_t code, uint32_t k);
BpfInsn jump(uint16_t code, uint32_t k, uint8_t jt, uint8_t jf);

/** Result of executing a filter. */
struct BpfResult {
    uint32_t action = 0;       ///< Raw SECCOMP_RET_* value.
    uint64_t insnsExecuted = 0; ///< Dynamic instruction count.
};

/**
 * One pre-decoded instruction of a compiled program.
 *
 * compile() lowers every validated BpfInsn into this dense form: the
 * opcode masks are resolved into a single enumerator, constant shifts
 * are strength-reduced, and every load offset / memory index / jump
 * target has already passed the verifier — so the fast interpreter
 * dispatches on one byte and never re-checks bounds or opcodes.
 */
struct BpfDecodedInsn {
    enum class Op : uint8_t {
        LdAbs, LdImm, LdLen, LdMem,
        LdxImm, LdxLen, LdxMem,
        St, Stx,
        AluAddK, AluSubK, AluMulK, AluDivK, AluModK,
        AluOrK, AluAndK, AluXorK, AluLshK, AluRshK,
        AluAddX, AluSubX, AluMulX, AluDivX, AluModX,
        AluOrX, AluAndX, AluXorX, AluLshX, AluRshX,
        AluNeg,
        Ja, JeqK, JgtK, JgeK, JsetK, JeqX, JgtX, JgeX, JsetX,
        RetK, RetA, Tax, Txa,
    };

    Op op;
    uint8_t jt = 0; ///< Relative offset when the condition holds.
    uint8_t jf = 0; ///< Relative offset when it does not.
    uint32_t k = 0; ///< Immediate / pre-checked offset or index.
};

/**
 * A validated classic-BPF program.
 */
class BpfProgram
{
  public:
    /** Construct an empty (invalid) program. */
    BpfProgram() = default;

    /**
     * Construct from raw instructions.
     *
     * Call validate() before running; run() panics on invalid programs.
     */
    explicit BpfProgram(std::vector<BpfInsn> insns);

    /**
     * Check the program against the seccomp verifier rules: bounded
     * length, known opcodes, in-range forward jumps, in-bounds aligned
     * ABS loads, every path ending in RET.
     *
     * @param error Receives a description of the first violation.
     * @return true when the program is acceptable.
     */
    bool validate(std::string *error = nullptr) const;

    /**
     * Pre-decode the program for the fast interpreter.
     *
     * Validates, then lowers each instruction into a BpfDecodedInsn so
     * run() can dispatch without per-instruction bounds or opcode
     * re-checks. Compilation happens automatically for every program
     * the filter builder emits; call it manually only on hand-rolled
     * instruction vectors.
     *
     * @param error Receives the validator's message on failure.
     * @return true when the program validated and compiled.
     */
    bool compile(std::string *error = nullptr);

    /** @return true once compile() has succeeded. */
    bool compiled() const { return !_decoded.empty(); }

    /**
     * Execute the filter over @p data.
     *
     * Uses the pre-decoded fast path when compiled, otherwise falls
     * back to runInterpreted().
     *
     * @param data The seccomp_data block for the pending system call.
     * @return Final action and dynamic instruction count.
     */
    BpfResult run(const os::SeccompData &data) const;

    /**
     * Execute via the reference interpreter, which re-derives opcode
     * fields on every instruction. Kept as the semantic baseline the
     * compiled fast path is equivalence-tested against.
     */
    BpfResult runInterpreted(const os::SeccompData &data) const;

    /** @return Static instruction count. */
    size_t size() const { return _insns.size(); }

    /** @return true if the program has at least one instruction. */
    bool empty() const { return _insns.empty(); }

    /** @return The instruction vector. */
    const std::vector<BpfInsn> &insns() const { return _insns; }

    /** @return A human-readable disassembly (one insn per line). */
    std::string disassemble() const;

  private:
    std::vector<BpfInsn> _insns;
    std::vector<BpfDecodedInsn> _decoded; ///< Empty until compile().
};

} // namespace draco::seccomp

#endif // DRACO_SECCOMP_BPF_HH
