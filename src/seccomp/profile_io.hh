/**
 * @file
 * Profile serialization: a line-oriented text format for Seccomp
 * profiles, playing the role of the JSON profiles container runtimes
 * ship (docker's default.json et al.). Profiles can be generated once
 * (the §X-B toolkit), saved, reviewed in code review, and loaded at
 * container start.
 *
 * Format ('#' comments and blank lines ignored):
 *
 *     # draco-profile v1
 *     name <profile-name>
 *     deny kill-process|kill-thread|trap|errno|trace|log
 *     allow <syscall> [runtime]
 *     tuple <syscall> [runtime] <a0> <a1> <a2> <a3> <a4> <a5>
 *     argvalues <syscall> [runtime] <arg-index> <v1> [<v2> ...]
 *
 * Argument values are hex without prefixes. Syscalls are named, not
 * numbered, so profiles survive table renumbering.
 */

#ifndef DRACO_SECCOMP_PROFILE_IO_HH
#define DRACO_SECCOMP_PROFILE_IO_HH

#include <iosfwd>
#include <optional>
#include <string>

#include "seccomp/profile.hh"

namespace draco::seccomp {

/** Magic first line of the format. */
inline constexpr const char *kProfileMagic = "# draco-profile v1";

/** Serialize @p profile to @p out. */
void writeProfile(const Profile &profile, std::ostream &out);

/** Serialize @p profile to @p path; fatal() on I/O failure. */
void writeProfileFile(const Profile &profile, const std::string &path);

/**
 * Parse a profile from @p in.
 *
 * @param in Input stream at the start of the file.
 * @param error Receives a message on failure (may be null, in which
 *        case parse errors are fatal()).
 * @return The profile, or nullopt on failure with @p error set.
 */
std::optional<Profile> readProfile(std::istream &in,
                                   std::string *error = nullptr);

/** Parse a profile from @p path; fatal() on I/O or parse failure. */
Profile readProfileFile(const std::string &path);

} // namespace draco::seccomp

#endif // DRACO_SECCOMP_PROFILE_IO_HH
