#include "seccomp/profile_gen.hh"

#include <algorithm>

#include "support/logging.hh"

namespace draco::seccomp {

ProfileRecorder::TupleKey
ProfileRecorder::canonicalize(const os::SyscallDesc &desc,
                              const os::SyscallRequest &req) const
{
    TupleKey key;
    key.reserve(desc.checkedArgCount());
    for (unsigned i = 0; i < desc.nargs; ++i) {
        if (desc.argIsPointer(i))
            continue;
        key.push_back(req.args[i]);
    }
    return key;
}

void
ProfileRecorder::record(const os::SyscallRequest &req)
{
    const auto *desc = os::syscallById(req.sid);
    if (!desc) {
        warn("ProfileRecorder: ignoring unknown syscall id %u", req.sid);
        return;
    }
    TupleKey key = canonicalize(*desc, req);
    auto [it, inserted] = _observed[req.sid].insert(std::move(key));
    if (inserted) {
        ArgVector raw;
        std::copy(req.args.begin(), req.args.end(), raw.begin());
        _tuples[req.sid].push_back(raw);
        _sample.emplace(req.sid, raw);
    }
}

size_t
ProfileRecorder::distinctTuples(uint16_t sid) const
{
    auto it = _observed.find(sid);
    return it == _observed.end() ? 0 : it->second.size();
}

Profile
ProfileRecorder::makeNoArgs(const std::string &name) const
{
    Profile p(name);
    const auto &runtime = containerRuntimeSyscalls();
    for (const auto &[sid, tuples] : _observed)
        p.allow(sid, runtime.count(sid) != 0);
    for (uint16_t sid : runtime)
        if (!p.rule(sid))
            p.allow(sid, true);
    return p;
}

Profile
ProfileRecorder::makeComplete(const std::string &name) const
{
    Profile p(name);
    const auto &runtime = containerRuntimeSyscalls();
    for (const auto &[sid, raws] : _tuples) {
        bool rt = runtime.count(sid) != 0;
        const auto *desc = os::syscallById(sid);
        if (desc->checkedArgCount() == 0) {
            // Nothing to compare: the whitelist reduces to the ID.
            p.allow(sid, rt);
            continue;
        }
        // Emit tuples in canonical (sorted) order, like a profile
        // toolkit writing a JSON whitelist would. Rule position in the
        // compiled filter is therefore unrelated to dynamic popularity
        // — which is precisely why argument checking is expensive for
        // Seccomp and why caching validated sets pays off.
        std::vector<ArgVector> sorted = raws;
        std::sort(sorted.begin(), sorted.end(),
                  [desc](const ArgVector &a, const ArgVector &b) {
                      for (unsigned i = 0; i < desc->nargs; ++i) {
                          if (desc->argIsPointer(i))
                              continue;
                          if (a[i] != b[i])
                              return a[i] < b[i];
                      }
                      return false;
                  });
        for (const auto &raw : sorted)
            p.allowTuple(sid, raw, rt);
    }
    for (uint16_t sid : runtime)
        if (!p.rule(sid))
            p.allow(sid, true);
    return p;
}

const std::set<uint16_t> &
containerRuntimeSyscalls()
{
    static const std::set<uint16_t> runtime = [] {
        // What runc/containerd exercise before and during the workload:
        // loader, allocator, threading, and signal plumbing.
        static const char *names[] = {
            "execve", "brk", "arch_prctl", "access", "openat", "close",
            "fstat", "mmap", "mprotect", "munmap", "read", "pread64",
            "set_tid_address", "set_robust_list", "rt_sigaction",
            "rt_sigprocmask", "prctl", "getrandom", "clone", "futex",
            "exit_group", "getpid", "gettid", "sched_getaffinity",
        };
        std::set<uint16_t> ids;
        for (const char *name : names) {
            const auto *desc = os::syscallByName(name);
            if (!desc)
                panic("containerRuntimeSyscalls: unknown '%s'", name);
            ids.insert(desc->id);
        }
        return ids;
    }();
    return runtime;
}

} // namespace draco::seccomp
