/**
 * @file
 * Application-specific profile generation (the paper's §X-B toolkit).
 *
 * The authors attach strace to a running application, record every
 * system call with its argument values, and emit Seccomp profiles that
 * whitelist exactly what was observed. ProfileRecorder plays the strace
 * role over our synthetic traces: feed it every SyscallRequest a workload
 * issues, then materialize
 *   - a `syscall-noargs` profile (IDs only),
 *   - a `syscall-complete` profile (IDs + exact argument tuples).
 * The `syscall-complete-2x` configuration attaches the complete filter
 * twice (two filter runs per call), exactly how the paper models a
 * near-future doubling of checks.
 */

#ifndef DRACO_SECCOMP_PROFILE_GEN_HH
#define DRACO_SECCOMP_PROFILE_GEN_HH

#include <map>
#include <set>
#include <string>
#include <vector>

#include "seccomp/profile.hh"

namespace draco::seccomp {

/**
 * Records observed (syscall, argument tuple) pairs and emits profiles.
 */
class ProfileRecorder
{
  public:
    /** Record one observed system call. */
    void record(const os::SyscallRequest &req);

    /** @return Number of distinct syscall IDs observed. */
    size_t distinctSyscalls() const { return _observed.size(); }

    /** @return Number of distinct argument tuples observed for @p sid. */
    size_t distinctTuples(uint16_t sid) const;

    /**
     * Emit an IDs-only whitelist.
     *
     * @param name Profile name.
     */
    Profile makeNoArgs(const std::string &name) const;

    /**
     * Emit an IDs+argument-tuples whitelist (the most secure filter).
     *
     * @param name Profile name.
     */
    Profile makeComplete(const std::string &name) const;

  private:
    /** Canonical tuple: checked-arg values only, masked to arg width. */
    using TupleKey = std::vector<uint64_t>;

    TupleKey canonicalize(const os::SyscallDesc &desc,
                          const os::SyscallRequest &req) const;

    std::map<uint16_t, std::set<TupleKey>> _observed;
    std::map<uint16_t, ArgVector> _sample; ///< A representative raw tuple.
    std::map<uint16_t, std::vector<ArgVector>> _tuples;
};

/**
 * Syscall IDs every container runtime needs regardless of application
 * (process start-up, loader, allocator plumbing). These are flagged
 * runtimeRequired in generated profiles, producing the ≈20% dark
 * fraction of Fig. 15a.
 */
const std::set<uint16_t> &containerRuntimeSyscalls();

} // namespace draco::seccomp

#endif // DRACO_SECCOMP_PROFILE_GEN_HH
