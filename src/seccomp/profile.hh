/**
 * @file
 * Seccomp profile model: which system calls a process may make, and with
 * which argument values.
 *
 * A Profile is the semantic object from which BPF filters are compiled
 * (FilterBuilder) and against which Draco-vs-Seccomp equivalence is
 * property-tested. Real-world profiles whitelist exact syscall IDs and
 * exact argument values (§II-B), which is exactly what this model
 * expresses: per-syscall rules that are either unconditional, a set of
 * allowed argument tuples, or per-argument allowed value sets.
 */

#ifndef DRACO_SECCOMP_PROFILE_HH
#define DRACO_SECCOMP_PROFILE_HH

#include <array>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "os/seccomp_abi.hh"
#include "os/syscalls.hh"

namespace draco::seccomp {

/** A full argument vector; only checked (non-pointer) slots are compared. */
using ArgVector = std::array<uint64_t, os::kMaxSyscallArgs>;

/** How a syscall's arguments are constrained. */
enum class RuleKind {
    AllowAll,      ///< Any argument values are acceptable.
    AllowTuples,   ///< Only whitelisted argument tuples are acceptable.
    PerArgValues,  ///< Each constrained argument has a value whitelist.
};

/** Per-syscall rule within a profile. */
struct SyscallRule {
    RuleKind kind = RuleKind::AllowAll;

    /** AllowTuples: whitelisted tuples (checked positions compared). */
    std::vector<ArgVector> tuples;

    /** PerArgValues: argument index -> allowed exact values. */
    std::map<unsigned, std::vector<uint64_t>> perArg;

    /**
     * Set when the container runtime (not the application) needs this
     * syscall; drives the dark fraction of Fig. 15a.
     */
    bool runtimeRequired = false;

    /** @return Number of argument positions this rule constrains. */
    unsigned argsChecked(const os::SyscallDesc &desc) const;

    /** @return Distinct allowed values summed over constrained args. */
    unsigned valuesAllowed(const os::SyscallDesc &desc) const;

    /** @return true when @p args satisfies the rule for @p desc. */
    bool matches(const os::SyscallDesc &desc, const ArgVector &args) const;
};

/** Aggregate security statistics of a profile (Fig. 15). */
struct ProfileStats {
    unsigned syscallsAllowed = 0;
    unsigned runtimeRequired = 0;
    unsigned argsChecked = 0;
    unsigned valuesAllowed = 0;
};

/**
 * A complete per-process checking policy.
 */
class Profile
{
  public:
    /** @param name Diagnostic name ("docker-default", "nginx-complete"). */
    explicit Profile(std::string name);

    /** @return Profile name. */
    const std::string &name() const { return _name; }

    /** Set the action for disallowed syscalls (default KillProcess). */
    void setDenyAction(os::SeccompAction action) { _denyAction = action; }

    /** @return Action returned for disallowed syscalls. */
    os::SeccompAction denyAction() const { return _denyAction; }

    /**
     * Set the SECCOMP_RET_DATA payload attached to the deny action —
     * for Errno denials this is the errno the kernel returns (docker
     * uses EPERM).
     */
    void setDenyData(uint16_t data) { _denyData = data; }

    /** @return The SECCOMP_RET_DATA payload. */
    uint16_t denyData() const { return _denyData; }

    /** @return The raw 32-bit filter return value for denials. */
    uint32_t
    denyValue() const
    {
        return static_cast<uint32_t>(_denyAction) | _denyData;
    }

    /** Allow @p sid with any arguments. */
    void allow(uint16_t sid, bool runtime_required = false);

    /** Allow @p sid only for the exact argument tuple @p args. */
    void allowTuple(uint16_t sid, const ArgVector &args,
                    bool runtime_required = false);

    /** Allow @p sid only when argument @p arg equals one of @p values. */
    void allowArgValues(uint16_t sid, unsigned arg,
                        std::vector<uint64_t> values,
                        bool runtime_required = false);

    /** @return The rule for @p sid, or nullptr when sid is disallowed. */
    const SyscallRule *rule(uint16_t sid) const;

    /** @return All rules keyed by sid. */
    const std::map<uint16_t, SyscallRule> &rules() const { return _rules; }

    /**
     * Ground-truth policy decision for a system call request.
     *
     * FilterBuilder-compiled BPF programs and both Draco implementations
     * must agree with this function on every input — the central
     * equivalence invariant of the test suite.
     */
    os::SeccompAction evaluate(const os::SyscallRequest &req) const;

    /** @return true when evaluate() would allow @p req. */
    bool allows(const os::SyscallRequest &req) const;

    /** @return Fig. 15 aggregate statistics. */
    ProfileStats stats() const;

  private:
    std::string _name;
    os::SeccompAction _denyAction = os::SeccompAction::KillProcess;
    uint16_t _denyData = 0;
    std::map<uint16_t, SyscallRule> _rules;
};

} // namespace draco::seccomp

#endif // DRACO_SECCOMP_PROFILE_HH
