#include "seccomp/profile.hh"

#include <algorithm>

#include "support/logging.hh"

namespace draco::seccomp {

unsigned
SyscallRule::argsChecked(const os::SyscallDesc &desc) const
{
    switch (kind) {
      case RuleKind::AllowAll:
        return 0;
      case RuleKind::AllowTuples:
        return desc.checkedArgCount();
      case RuleKind::PerArgValues:
        return static_cast<unsigned>(perArg.size());
    }
    return 0;
}

unsigned
SyscallRule::valuesAllowed(const os::SyscallDesc &desc) const
{
    switch (kind) {
      case RuleKind::AllowAll:
        return 0;
      case RuleKind::AllowTuples: {
        unsigned total = 0;
        for (unsigned i = 0; i < desc.nargs; ++i) {
            if (desc.argIsPointer(i))
                continue;
            std::set<uint64_t> distinct;
            for (const auto &t : tuples)
                distinct.insert(t[i]);
            total += static_cast<unsigned>(distinct.size());
        }
        return total;
      }
      case RuleKind::PerArgValues: {
        unsigned total = 0;
        for (const auto &[arg, values] : perArg) {
            std::set<uint64_t> distinct(values.begin(), values.end());
            total += static_cast<unsigned>(distinct.size());
        }
        return total;
      }
    }
    return 0;
}

bool
SyscallRule::matches(const os::SyscallDesc &desc, const ArgVector &args) const
{
    switch (kind) {
      case RuleKind::AllowAll:
        return true;
      case RuleKind::AllowTuples:
        for (const auto &t : tuples) {
            bool ok = true;
            for (unsigned i = 0; i < desc.nargs && ok; ++i) {
                if (desc.argIsPointer(i))
                    continue;
                // Full 64-bit comparison, like the seccomp_data view.
                ok = args[i] == t[i];
            }
            if (ok)
                return true;
        }
        return false;
      case RuleKind::PerArgValues:
        for (const auto &[arg, values] : perArg) {
            if (arg >= desc.nargs)
                return false;
            uint64_t v = args[arg];
            if (std::find(values.begin(), values.end(), v) == values.end())
                return false;
        }
        return true;
    }
    return false;
}

Profile::Profile(std::string name)
    : _name(std::move(name))
{
}

void
Profile::allow(uint16_t sid, bool runtime_required)
{
    SyscallRule &rule = _rules[sid];
    rule.kind = RuleKind::AllowAll;
    rule.tuples.clear();
    rule.perArg.clear();
    rule.runtimeRequired = rule.runtimeRequired || runtime_required;
}

void
Profile::allowTuple(uint16_t sid, const ArgVector &args,
                    bool runtime_required)
{
    SyscallRule &rule = _rules[sid];
    if (rule.kind != RuleKind::AllowTuples && !rule.tuples.empty())
        panic("Profile::allowTuple: rule kind conflict for sid %u", sid);
    rule.kind = RuleKind::AllowTuples;
    rule.runtimeRequired = rule.runtimeRequired || runtime_required;
    const auto *desc = os::syscallById(sid);
    if (!desc)
        fatal("Profile::allowTuple: unknown syscall id %u", sid);
    // Deduplicate on checked positions.
    for (const auto &t : rule.tuples) {
        bool same = true;
        for (unsigned i = 0; i < desc->nargs && same; ++i) {
            if (desc->argIsPointer(i))
                continue;
            same = t[i] == args[i];
        }
        if (same)
            return;
    }
    rule.tuples.push_back(args);
}

void
Profile::allowArgValues(uint16_t sid, unsigned arg,
                        std::vector<uint64_t> values, bool runtime_required)
{
    if (arg >= os::kMaxSyscallArgs)
        fatal("Profile::allowArgValues: bad argument index %u", arg);
    SyscallRule &rule = _rules[sid];
    rule.kind = RuleKind::PerArgValues;
    rule.runtimeRequired = rule.runtimeRequired || runtime_required;
    auto &dst = rule.perArg[arg];
    for (uint64_t v : values)
        if (std::find(dst.begin(), dst.end(), v) == dst.end())
            dst.push_back(v);
}

const SyscallRule *
Profile::rule(uint16_t sid) const
{
    auto it = _rules.find(sid);
    return it == _rules.end() ? nullptr : &it->second;
}

os::SeccompAction
Profile::evaluate(const os::SyscallRequest &req) const
{
    const SyscallRule *r = rule(req.sid);
    if (!r)
        return _denyAction;
    const auto *desc = os::syscallById(req.sid);
    if (!desc)
        return _denyAction;
    ArgVector args;
    std::copy(req.args.begin(), req.args.end(), args.begin());
    return r->matches(*desc, args) ? os::SeccompAction::Allow : _denyAction;
}

bool
Profile::allows(const os::SyscallRequest &req) const
{
    return os::actionAllows(evaluate(req));
}

ProfileStats
Profile::stats() const
{
    ProfileStats s;
    for (const auto &[sid, rule] : _rules) {
        const auto *desc = os::syscallById(sid);
        if (!desc)
            continue;
        ++s.syscallsAllowed;
        if (rule.runtimeRequired)
            ++s.runtimeRequired;
        s.argsChecked += rule.argsChecked(*desc);
        s.valuesAllowed += rule.valuesAllowed(*desc);
    }
    return s;
}

} // namespace draco::seccomp
