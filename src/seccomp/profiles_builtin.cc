#include "seccomp/profiles_builtin.hh"

#include "support/logging.hh"

namespace draco::seccomp {

namespace {

uint16_t
idOf(const char *name)
{
    const auto *desc = os::syscallByName(name);
    if (!desc)
        panic("builtin profile references unknown syscall '%s'", name);
    return desc->id;
}

} // namespace

Profile
insecureProfile()
{
    Profile p("insecure");
    p.setDenyAction(os::SeccompAction::Allow);
    return p;
}

const std::vector<std::string> &
dockerDeniedNames()
{
    // The Moby default profile's deny set (syscalls absent from its
    // allowlist), restricted to entries that exist in the native x86-64
    // table. io_uring and the mount API calls postdate the 2019-era
    // profile and are treated as denied as well.
    static const std::vector<std::string> denied = {
        "acct", "add_key", "afs_syscall", "bpf", "clock_adjtime",
        "clock_settime", "create_module", "delete_module", "epoll_ctl_old",
        "epoll_wait_old", "fanotify_init", "fanotify_mark", "finit_module",
        "fsconfig", "fsmount", "fsopen", "fspick", "get_kernel_syms",
        "get_mempolicy", "getpmsg", "init_module", "io_uring_enter",
        "io_uring_register", "io_uring_setup", "ioperm", "iopl", "kcmp",
        "kexec_file_load", "kexec_load", "keyctl", "lookup_dcookie",
        "mbind", "mount", "move_mount", "move_pages", "name_to_handle_at",
        "nfsservctl", "open_by_handle_at", "open_tree", "perf_event_open",
        "pidfd_open", "pidfd_send_signal", "pivot_root",
        "process_vm_readv", "process_vm_writev", "ptrace", "putpmsg",
        "query_module", "quotactl", "reboot", "request_key", "security",
        "set_mempolicy", "setns", "settimeofday", "swapoff", "swapon",
        "_sysctl", "tuxcall", "umount2", "unshare", "uselib",
        "userfaultfd", "ustat", "vhangup", "vserver",
    };
    return denied;
}

Profile
dockerDefaultProfile()
{
    Profile p("docker-default");
    p.setDenyAction(os::SeccompAction::Errno);
    p.setDenyData(1); // EPERM, as the Moby profile returns

    std::set<uint16_t> denied;
    for (const auto &name : dockerDeniedNames())
        denied.insert(idOf(name.c_str()));

    for (const auto &desc : os::syscallTable()) {
        if (denied.count(desc.id))
            continue;
        if (desc.id == os::sc::personality || desc.id == os::sc::clone)
            continue;
        p.allow(desc.id);
    }

    // The only argument checks in docker-default (§II-C): personality
    // may select five specific execution domains, and clone may use two
    // flag combinations (process creation and pthread creation) — seven
    // unique argument values in total.
    p.allowArgValues(os::sc::personality, 0,
                     {0x0, 0x0008, 0x20000, 0x20008, 0xffffffff});
    p.allowArgValues(os::sc::clone, 0,
                     {0x01200011ULL, 0x003D0F00ULL});
    return p;
}

Profile
gvisorProfile()
{
    Profile p("gvisor-host");
    p.setDenyAction(os::SeccompAction::KillProcess);

    // The 74 syscalls the Sentry's host filter needs. Entries with an
    // allowArgValues() call below are added there instead.
    static const char *plain[] = {
        "accept", "bind", "brk", "close", "connect", "dup", "dup2",
        "epoll_create", "epoll_create1", "epoll_wait", "execve", "exit",
        "exit_group", "fstat", "fsync", "getcpu", "getcwd", "getpeername",
        "getpid", "getppid", "getsockname", "gettid", "gettimeofday",
        "listen", "munmap", "nanosleep",
        "pipe", "poll", "ppoll", "pread64", "preadv", "pwrite64",
        "pwritev", "read", "readv", "restart_syscall", "rt_sigaction",
        "rt_sigreturn", "sched_getaffinity", "sched_yield", "sigaltstack",
        "uname", "wait4", "write", "writev", "epoll_pwait",
    };
    for (const char *name : plain)
        p.allow(idOf(name));

    // Argument-restricted entries; the value-set sizes sum to the
    // paper's 130 argument checks for the gVisor profile.
    p.allowArgValues(idOf("fcntl"), 1, {0, 1, 2, 3, 4, 1030});
    p.allowArgValues(idOf("ioctl"), 1,
                     {0x5401, 0x5402, 0x5403, 0x5413, 0x541B, 0x5421,
                      0x8910, 0x8927, 0x8933, 0x89a2});
    p.allowArgValues(idOf("socket"), 0, {1, 2, 10});
    p.allowArgValues(idOf("socket"), 1, {1, 2, 0x80001, 0x80002});
    p.allowArgValues(idOf("socket"), 2, {0, 6});
    p.allowArgValues(idOf("futex"), 1,
                     {0, 1, 3, 4, 9, 128, 129, 131, 132, 137});
    p.allowArgValues(idOf("mmap"), 2, {0, 1, 3, 5});
    p.allowArgValues(idOf("mmap"), 3,
                     {0x02, 0x22, 0x32, 0x01, 0x11, 0x4022, 0x20022,
                      0x2022});
    p.allowArgValues(idOf("madvise"), 2, {0, 3, 4, 8, 9, 10, 12, 14});
    p.allowArgValues(idOf("clone"), 0,
                     {0x003D0F00, 0x01200011, 0x00000011, 0x00010900});
    p.allowArgValues(idOf("epoll_ctl"), 1, {1, 2, 3});
    p.allowArgValues(idOf("rt_sigprocmask"), 0, {0, 1, 2});
    p.allowArgValues(idOf("lseek"), 2, {0, 1, 2});
    p.allowArgValues(idOf("shutdown"), 1, {0, 1, 2});
    p.allowArgValues(idOf("setsockopt"), 1, {1, 6, 41});
    p.allowArgValues(idOf("setsockopt"), 2, {2, 3, 9, 13, 20, 23, 26, 27});
    p.allowArgValues(idOf("getsockopt"), 1, {1, 6});
    p.allowArgValues(idOf("getsockopt"), 2, {3, 4, 17, 28});
    p.allowArgValues(idOf("sendmmsg"), 3, {0x40, 0x4040});
    p.allowArgValues(idOf("recvmmsg"), 3, {0x40, 0x10040, 0x100});
    p.allowArgValues(idOf("sendmsg"), 2, {0, 0x40, 0x4000});
    p.allowArgValues(idOf("recvmsg"), 2, {0, 0x40, 0x100});
    p.allowArgValues(idOf("tgkill"), 2, {10, 12});
    p.allowArgValues(idOf("membarrier"), 0, {0, 1, 16});
    p.allowArgValues(idOf("fallocate"), 1, {0, 1, 3});
    p.allowArgValues(idOf("eventfd2"), 1, {0, 0x80000, 0x80800});
    p.allowArgValues(idOf("socketpair"), 0, {1});
    p.allowArgValues(idOf("socketpair"), 1, {1, 0x80001});
    p.allowArgValues(idOf("fchmod"), 1, {0600, 0644, 0700, 0755});
    p.allowArgValues(idOf("utimensat"), 3, {0, 0x100});
    p.allowArgValues(idOf("dup3"), 2, {0, 0x80000});
    p.allowArgValues(idOf("pipe2"), 1, {0, 0x800, 0x80000});
    p.allowArgValues(idOf("getrandom"), 2, {0, 1, 2});
    p.allowArgValues(idOf("clock_gettime"), 0, {0, 1, 4});
    return p;
}

Profile
firecrackerProfile()
{
    Profile p("firecracker");
    p.setDenyAction(os::SeccompAction::KillProcess);

    static const char *plain[] = {
        "accept4", "brk", "close", "connect", "dup", "epoll_create1",
        "epoll_ctl", "epoll_pwait", "epoll_wait", "exit", "exit_group",
        "futex", "getpid", "gettid", "lseek", "madvise", "mmap", "munmap",
        "read", "readv", "recvfrom", "rt_sigaction", "rt_sigprocmask",
        "rt_sigreturn", "sched_yield", "stat", "timerfd_create",
        "timerfd_settime", "tkill", "write", "writev", "open", "pipe2",
    };
    for (const char *name : plain)
        p.allow(idOf(name));

    // Eight argument checks total.
    p.allowArgValues(idOf("ioctl"), 1, {0xAE01, 0xAE03, 0xAE41, 0xAEA0});
    p.allowArgValues(idOf("fcntl"), 1, {1, 2});
    p.allowArgValues(idOf("socket"), 0, {1});
    p.allowArgValues(idOf("eventfd2"), 1, {0});
    return p;
}

} // namespace draco::seccomp
