#include "seccomp/profile_io.hh"

#include <fstream>
#include <map>
#include <sstream>

#include "support/logging.hh"

namespace draco::seccomp {

namespace {

const std::map<std::string, os::SeccompAction> &
actionNames()
{
    static const std::map<std::string, os::SeccompAction> names = {
        {"kill-process", os::SeccompAction::KillProcess},
        {"kill-thread", os::SeccompAction::KillThread},
        {"trap", os::SeccompAction::Trap},
        {"errno", os::SeccompAction::Errno},
        {"trace", os::SeccompAction::Trace},
        {"log", os::SeccompAction::Log},
    };
    return names;
}

const char *
actionName(os::SeccompAction action)
{
    for (const auto &[name, value] : actionNames())
        if (value == action)
            return name.c_str();
    return "kill-process";
}

} // namespace

void
writeProfile(const Profile &profile, std::ostream &out)
{
    out << kProfileMagic << '\n';
    out << "name " << profile.name() << '\n';
    out << "deny " << actionName(profile.denyAction());
    if (profile.denyData())
        out << ' ' << profile.denyData();
    out << '\n';

    char buf[384];
    for (const auto &[sid, rule] : profile.rules()) {
        const auto *desc = os::syscallById(sid);
        if (!desc)
            continue;
        const char *rt = rule.runtimeRequired ? " runtime" : "";
        switch (rule.kind) {
          case RuleKind::AllowAll:
            out << "allow " << desc->name << rt << '\n';
            break;
          case RuleKind::AllowTuples:
            for (const auto &tuple : rule.tuples) {
                std::snprintf(buf, sizeof(buf),
                              "tuple %s%s %llx %llx %llx %llx %llx %llx\n",
                              desc->name, rt,
                              static_cast<unsigned long long>(tuple[0]),
                              static_cast<unsigned long long>(tuple[1]),
                              static_cast<unsigned long long>(tuple[2]),
                              static_cast<unsigned long long>(tuple[3]),
                              static_cast<unsigned long long>(tuple[4]),
                              static_cast<unsigned long long>(tuple[5]));
                out << buf;
            }
            break;
          case RuleKind::PerArgValues:
            for (const auto &[arg, values] : rule.perArg) {
                out << "argvalues " << desc->name << rt << ' ' << arg
                    << std::hex;
                for (uint64_t v : values)
                    out << ' ' << v;
                out << std::dec << '\n';
            }
            break;
        }
    }
}

void
writeProfileFile(const Profile &profile, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        fatal("writeProfileFile: cannot open '%s'", path.c_str());
    writeProfile(profile, out);
    if (!out)
        fatal("writeProfileFile: write to '%s' failed", path.c_str());
}

std::optional<Profile>
readProfile(std::istream &in, std::string *error)
{
    size_t lineNo = 0;
    auto fail = [&](const std::string &msg) -> std::optional<Profile> {
        std::string full =
            msg + " (line " + std::to_string(lineNo) + ")";
        if (error)
            *error = full;
        else
            fatal("readProfile: %s", full.c_str());
        return std::nullopt;
    };

    std::string line;
    if (!std::getline(in, line) || line != kProfileMagic) {
        ++lineNo;
        return fail("missing '# draco-profile v1' header");
    }
    ++lineNo;

    Profile profile("unnamed");
    while (std::getline(in, line)) {
        ++lineNo;
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream fields(line);
        std::string keyword;
        fields >> keyword;

        if (keyword == "name") {
            std::string name;
            fields >> name;
            if (name.empty())
                return fail("empty profile name");
            Profile renamed(name);
            renamed.setDenyAction(profile.denyAction());
            for (const auto &[sid, rule] : profile.rules()) {
                // Only the header may appear before rules.
                (void)sid;
                (void)rule;
                return fail("'name' must precede all rules");
            }
            profile = std::move(renamed);
            continue;
        }
        if (keyword == "deny") {
            std::string action;
            fields >> action;
            auto it = actionNames().find(action);
            if (it == actionNames().end())
                return fail("unknown deny action '" + action + "'");
            profile.setDenyAction(it->second);
            unsigned data = 0;
            if (fields >> data)
                profile.setDenyData(static_cast<uint16_t>(data));
            continue;
        }

        if (keyword != "allow" && keyword != "tuple" &&
            keyword != "argvalues") {
            return fail("unknown keyword '" + keyword + "'");
        }

        std::string syscallName;
        fields >> syscallName;
        const auto *desc = os::syscallByName(syscallName);
        if (!desc)
            return fail("unknown syscall '" + syscallName + "'");

        bool runtime = false;
        if (fields.peek() != EOF) {
            std::streampos mark = fields.tellg();
            std::string token;
            fields >> token;
            if (token == "runtime")
                runtime = true;
            else
                fields.seekg(mark);
        }

        if (keyword == "allow") {
            profile.allow(desc->id, runtime);
        } else if (keyword == "tuple") {
            ArgVector args{};
            fields >> std::hex;
            for (auto &arg : args) {
                unsigned long long v = 0;
                fields >> v;
                arg = v;
            }
            if (!fields)
                return fail("malformed tuple");
            profile.allowTuple(desc->id, args, runtime);
        } else { // argvalues
            unsigned arg = 0;
            fields >> std::dec >> arg >> std::hex;
            if (!fields || arg >= os::kMaxSyscallArgs)
                return fail("malformed argvalues");
            std::vector<uint64_t> values;
            unsigned long long v = 0;
            while (fields >> v)
                values.push_back(v);
            if (values.empty())
                return fail("argvalues needs at least one value");
            profile.allowArgValues(desc->id, arg, values, runtime);
        }
    }
    if (error)
        error->clear();
    return profile;
}

Profile
readProfileFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("readProfileFile: cannot open '%s'", path.c_str());
    auto profile = readProfile(in, nullptr);
    // readProfile without an error sink is fatal on failure.
    return *profile;
}

} // namespace draco::seccomp
