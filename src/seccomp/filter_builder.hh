/**
 * @file
 * Compilation of Profiles into classic-BPF Seccomp filters.
 *
 * Two emitters are provided. The *linear* emitter produces the long
 * if-chain structure of Figure 1 — the shape real generated profiles
 * have, whose execution cost grows with the position of the matching
 * rule. The *binary-tree* emitter reproduces the libseccomp cBPF
 * binary-tree optimization discussed in §XII (Hromatka), which replaces
 * the linear syscall-ID scan with a balanced search tree but leaves the
 * argument-checking chains intact.
 */

#ifndef DRACO_SECCOMP_FILTER_BUILDER_HH
#define DRACO_SECCOMP_FILTER_BUILDER_HH

#include <cstdint>
#include <vector>

#include "seccomp/bpf.hh"
#include "seccomp/profile.hh"

namespace draco::seccomp {

/**
 * Small two-pass assembler: emit instructions against symbolic labels,
 * then resolve. Conditional branches take a far *true* target (lowered
 * to `jxx +0,+1; ja target`) with fall-through false paths, or short
 * local offsets; unconditional far jumps use JA's 32-bit offset.
 */
class BpfAssembler
{
  public:
    /** Opaque label handle. */
    using Label = size_t;

    /** Create a fresh unbound label. */
    Label newLabel();

    /** Bind @p label to the current position. */
    void bind(Label label);

    /** Append a non-branch instruction. */
    void emit(const BpfInsn &insn);

    /** Append `ld [k]` of a seccomp_data word. */
    void loadAbs(uint32_t offset);

    /** Append `ret k`. */
    void ret(uint32_t action);

    /** Append an unconditional far jump to @p target. */
    void ja(Label target);

    /**
     * Append a conditional branch: when (A @p condCode k) holds, control
     * transfers to @p onTrue; otherwise execution falls through.
     */
    void condFar(uint16_t condCode, uint32_t k, Label onTrue);

    /**
     * Append a conditional branch with a *short* false target: when the
     * condition fails, control transfers to @p onFalse (which must bind
     * within 255 instructions); when it holds, execution falls through.
     */
    void condFalseShort(uint16_t condCode, uint32_t k, Label onFalse);

    /**
     * Append a conditional branch with a *short* true target: when the
     * condition holds, control transfers to @p onTrue (within 255
     * instructions); otherwise execution falls through.
     */
    void condTrueShort(uint16_t condCode, uint32_t k, Label onTrue);

    /** Resolve all labels and return the finished program. */
    BpfProgram finish();

    /** @return Current instruction count. */
    size_t size() const { return _insns.size(); }

  private:
    /** Which field of the pending instruction a fixup patches. */
    enum class FixupKind {
        FarK,       ///< 32-bit JA displacement in k.
        ShortFalse, ///< 8-bit jf offset.
        ShortTrue,  ///< 8-bit jt offset.
    };

    struct Fixup {
        size_t insn;     ///< Index of the instruction to patch.
        Label label;     ///< Target label.
        FixupKind kind;  ///< Field to patch.
    };

    std::vector<BpfInsn> _insns;
    std::vector<ssize_t> _labelPos; // -1 while unbound
    std::vector<Fixup> _fixups;
};

/** Which syscall-ID dispatch structure to emit. */
enum class DispatchShape {
    Linear,      ///< Sequential tests with libseccomp range coalescing.
    LinearChain, ///< Pure Figure-1 if-chain, one test per syscall ID.
    BinaryTree,  ///< libseccomp binary-tree optimization (§XII).
};

/**
 * Compile @p profile into a validated Seccomp BPF program.
 *
 * The program begins with the architecture guard, dispatches on the
 * syscall ID per @p shape, runs per-rule argument checks, and returns
 * ALLOW or the profile's deny action. Panics if the profile is too
 * large for a single program — use buildFilterChain() for that case.
 *
 * @param profile Policy to compile.
 * @param shape Dispatch structure.
 * @return A program that passes BpfProgram::validate().
 */
BpfProgram buildFilter(const Profile &profile,
                       DispatchShape shape = DispatchShape::Linear);

/**
 * A sequence of attached Seccomp filters.
 *
 * The kernel runs every attached filter on each syscall and applies
 * the most restrictive result; profiles whose argument whitelists do
 * not fit BPF_MAXINSNS are compiled into a chain, exactly how large
 * policies are deployed in practice.
 */
class FilterChain
{
  public:
    FilterChain() = default;

    /** Wrap pre-built programs. */
    explicit FilterChain(std::vector<BpfProgram> programs);

    /**
     * Execute every filter over @p data.
     *
     * @return Most restrictive action; insnsExecuted sums the chain.
     */
    BpfResult run(const os::SeccompData &data) const;

    /** @return Number of attached programs. */
    size_t filterCount() const { return _programs.size(); }

    /** @return Static instructions summed over the chain. */
    size_t totalInsns() const;

    /** @return The programs. */
    const std::vector<BpfProgram> &programs() const { return _programs; }

  private:
    std::vector<BpfProgram> _programs;
};

/**
 * @return The more restrictive of two seccomp return values, per the
 *         kernel's action precedence (KILL_PROCESS strongest, ALLOW
 *         weakest).
 */
uint32_t mostRestrictiveAction(uint32_t a, uint32_t b);

/**
 * Compile @p profile into one or more filters, each within
 * @p max_insns_per_filter. Argument-checking rules are partitioned
 * greedily across programs; every program whitelists the full syscall
 * ID set and defers argument rules owned by its siblings, so the
 * chain's conjunction equals the profile's semantics.
 */
FilterChain buildFilterChain(const Profile &profile,
                             DispatchShape shape = DispatchShape::Linear,
                             size_t max_insns_per_filter = kBpfMaxInsns);

} // namespace draco::seccomp

#endif // DRACO_SECCOMP_FILTER_BUILDER_HH
