#include "seccomp/filter_builder.hh"

#include <algorithm>

#include "support/logging.hh"

namespace draco::seccomp {

BpfAssembler::Label
BpfAssembler::newLabel()
{
    _labelPos.push_back(-1);
    return _labelPos.size() - 1;
}

void
BpfAssembler::bind(Label label)
{
    if (_labelPos.at(label) != -1)
        panic("BpfAssembler: label bound twice");
    _labelPos[label] = static_cast<ssize_t>(_insns.size());
}

void
BpfAssembler::emit(const BpfInsn &insn)
{
    _insns.push_back(insn);
}

void
BpfAssembler::loadAbs(uint32_t offset)
{
    emit(stmt(op::LD | op::W | op::ABS, offset));
}

void
BpfAssembler::ret(uint32_t action)
{
    emit(stmt(op::RET | op::K, action));
}

void
BpfAssembler::ja(Label target)
{
    _fixups.push_back({_insns.size(), target, FixupKind::FarK});
    emit(stmt(op::JMP | op::JA, 0));
}

void
BpfAssembler::condFar(uint16_t condCode, uint32_t k, Label onTrue)
{
    // True falls into the JA trampoline; false hops over it.
    emit(jump(op::JMP | condCode | op::K, k, 0, 1));
    ja(onTrue);
}

void
BpfAssembler::condFalseShort(uint16_t condCode, uint32_t k, Label onFalse)
{
    _fixups.push_back({_insns.size(), onFalse, FixupKind::ShortFalse});
    emit(jump(op::JMP | condCode | op::K, k, 0, 0));
}

void
BpfAssembler::condTrueShort(uint16_t condCode, uint32_t k, Label onTrue)
{
    _fixups.push_back({_insns.size(), onTrue, FixupKind::ShortTrue});
    emit(jump(op::JMP | condCode | op::K, k, 0, 0));
}

BpfProgram
BpfAssembler::finish()
{
    for (const Fixup &fix : _fixups) {
        ssize_t pos = _labelPos.at(fix.label);
        if (pos < 0)
            panic("BpfAssembler: unbound label %zu", fix.label);
        ssize_t offset = pos - static_cast<ssize_t>(fix.insn) - 1;
        if (offset < 0)
            panic("BpfAssembler: backward jump (seccomp forbids)");
        switch (fix.kind) {
          case FixupKind::FarK:
            _insns[fix.insn].k = static_cast<uint32_t>(offset);
            break;
          case FixupKind::ShortFalse:
            if (offset > 255)
                panic("BpfAssembler: short false target out of range");
            _insns[fix.insn].jf = static_cast<uint8_t>(offset);
            break;
          case FixupKind::ShortTrue:
            if (offset > 255)
                panic("BpfAssembler: short true target out of range");
            _insns[fix.insn].jt = static_cast<uint8_t>(offset);
            break;
        }
    }
    BpfProgram program(std::move(_insns));
    _insns.clear();
    _fixups.clear();
    _labelPos.clear();
    std::string error;
    if (!program.compile(&error))
        panic("BpfAssembler produced invalid program: %s", error.c_str());
    return program;
}

namespace {

uint32_t lo32(uint64_t v) { return static_cast<uint32_t>(v); }
uint32_t hi32(uint64_t v) { return static_cast<uint32_t>(v >> 32); }

/**
 * Emit the argument-checking body for one syscall rule. Entered with the
 * syscall ID already matched; must terminate with RET on every path.
 */
void
emitRuleBody(BpfAssembler &as, const os::SyscallDesc &desc,
             const SyscallRule &rule, uint32_t denyValue)
{
    const uint32_t allowValue =
        static_cast<uint32_t>(os::SeccompAction::Allow);

    switch (rule.kind) {
      case RuleKind::AllowAll:
        as.ret(allowValue);
        return;

      case RuleKind::AllowTuples: {
        if (rule.tuples.empty()) {
            as.ret(denyValue);
            return;
        }
        for (const auto &tuple : rule.tuples) {
            BpfAssembler::Label nextTuple = as.newLabel();
            for (unsigned i = 0; i < desc.nargs; ++i) {
                if (desc.argIsPointer(i))
                    continue;
                // Both 32-bit halves are compared, exactly as real
                // libseccomp rules do for 64-bit seccomp_data args.
                as.loadAbs(os::sd_off::argLo(i));
                as.condFalseShort(op::JEQ, lo32(tuple[i]), nextTuple);
                as.loadAbs(os::sd_off::argHi(i));
                as.condFalseShort(op::JEQ, hi32(tuple[i]), nextTuple);
            }
            as.ret(allowValue);
            as.bind(nextTuple);
        }
        as.ret(denyValue);
        return;
      }

      case RuleKind::PerArgValues: {
        for (const auto &[arg, values] : rule.perArg) {
            BpfAssembler::Label argOk = as.newLabel();
            for (uint64_t v : values) {
                BpfAssembler::Label nextValue = as.newLabel();
                as.loadAbs(os::sd_off::argLo(arg));
                as.condFalseShort(op::JEQ, lo32(v), nextValue);
                as.loadAbs(os::sd_off::argHi(arg));
                as.condFalseShort(op::JEQ, hi32(v), nextValue);
                as.ja(argOk);
                as.bind(nextValue);
            }
            as.ret(denyValue);
            as.bind(argOk);
        }
        as.ret(allowValue);
        return;
      }
    }
    panic("emitRuleBody: unhandled rule kind");
}

/** Recursively emit a balanced binary search tree over syscall IDs. */
void
emitTreeDispatch(BpfAssembler &as, const std::vector<uint16_t> &sids,
                 const std::vector<BpfAssembler::Label> &bodies,
                 size_t lo, size_t hi, BpfAssembler::Label deny)
{
    constexpr size_t kLeafWidth = 4;
    if (hi - lo <= kLeafWidth) {
        for (size_t i = lo; i < hi; ++i)
            as.condFar(op::JEQ, sids[i], bodies[i]);
        as.ja(deny);
        return;
    }
    size_t mid = lo + (hi - lo) / 2;
    BpfAssembler::Label right = as.newLabel();
    as.condFar(op::JGE, sids[mid], right);
    emitTreeDispatch(as, sids, bodies, lo, mid, deny);
    as.bind(right);
    emitTreeDispatch(as, sids, bodies, mid, hi, deny);
}

} // namespace

BpfProgram
buildFilter(const Profile &profile, DispatchShape shape)
{
    BpfAssembler as;
    const uint32_t denyValue = profile.denyValue();
    const auto killValue =
        static_cast<uint32_t>(os::SeccompAction::KillProcess);

    // Architecture guard: non-native callers are killed outright.
    as.loadAbs(os::sd_off::arch);
    as.emit(jump(op::JMP | op::JEQ | op::K, os::kAuditArchX86_64, 1, 0));
    as.ret(killValue);

    as.loadAbs(os::sd_off::nr);

    std::vector<uint16_t> sids;
    std::vector<const SyscallRule *> rules;
    for (const auto &[sid, rule] : profile.rules()) {
        if (!os::syscallById(sid))
            continue;
        sids.push_back(sid);
        rules.push_back(&rule);
    }

    BpfAssembler::Label deny = as.newLabel();
    std::vector<BpfAssembler::Label> bodies(sids.size());
    std::vector<bool> hasBody(sids.size(), false);
    const uint32_t allowValue =
        static_cast<uint32_t>(os::SeccompAction::Allow);

    if (shape == DispatchShape::LinearChain) {
        // Pure Figure-1 shape: one equality test per allowed ID, no
        // range coalescing — the baseline the §XII binary-tree
        // optimization is measured against.
        for (size_t i = 0; i < sids.size(); ++i) {
            bodies[i] = as.newLabel();
            hasBody[i] = true;
            as.condFar(op::JEQ, sids[i], bodies[i]);
        }
        as.ja(deny);
    } else if (shape == DispatchShape::Linear) {
        // Figure-1 style sequential dispatch — with libseccomp's range
        // coalescing: runs of *consecutive* unconditionally-allowed IDs
        // compile to one (jge lo, jgt hi) pair, which is why broad
        // whitelists like docker-default stay cheap despite allowing
        // hundreds of syscalls. Argument-checked and isolated IDs keep
        // their individual equality tests.
        size_t i = 0;
        while (i < sids.size()) {
            bool plain = rules[i]->kind == RuleKind::AllowAll;
            if (plain) {
                size_t j = i;
                while (j + 1 < sids.size() &&
                       rules[j + 1]->kind == RuleKind::AllowAll &&
                       sids[j + 1] == sids[j] + 1) {
                    ++j;
                }
                if (j > i) {
                    BpfAssembler::Label next = as.newLabel();
                    // A in [lo, hi] -> allow; otherwise next group.
                    as.condFalseShort(op::JGE, sids[i], next);
                    as.condTrueShort(op::JGT, sids[j], next);
                    as.ret(allowValue);
                    as.bind(next);
                    i = j + 1;
                    continue;
                }
            }
            bodies[i] = as.newLabel();
            hasBody[i] = true;
            as.condFar(op::JEQ, sids[i], bodies[i]);
            ++i;
        }
        as.ja(deny);
    } else {
        for (auto &label : bodies)
            label = as.newLabel();
        hasBody.assign(sids.size(), true);
        emitTreeDispatch(as, sids, bodies, 0, sids.size(), deny);
    }

    for (size_t i = 0; i < sids.size(); ++i) {
        if (!hasBody[i])
            continue;
        as.bind(bodies[i]);
        emitRuleBody(as, *os::syscallById(sids[i]), *rules[i], denyValue);
    }

    as.bind(deny);
    as.ret(denyValue);

    return as.finish();
}

FilterChain::FilterChain(std::vector<BpfProgram> programs)
    : _programs(std::move(programs))
{
    // Attaching is the kernel's validation point; it is also where we
    // pre-decode for the fast interpreter. Invalid programs stay
    // uncompiled and fail at run() exactly as before.
    for (BpfProgram &program : _programs)
        if (!program.compiled())
            program.compile();
}

uint32_t
mostRestrictiveAction(uint32_t a, uint32_t b)
{
    // Kernel precedence, strongest first.
    static const uint32_t precedence[] = {
        static_cast<uint32_t>(os::SeccompAction::KillProcess),
        static_cast<uint32_t>(os::SeccompAction::KillThread),
        static_cast<uint32_t>(os::SeccompAction::Trap),
        static_cast<uint32_t>(os::SeccompAction::Errno),
        static_cast<uint32_t>(os::SeccompAction::Trace),
        static_cast<uint32_t>(os::SeccompAction::Log),
        static_cast<uint32_t>(os::SeccompAction::Allow),
    };
    uint32_t actionA =
        static_cast<uint32_t>(os::actionOf(a));
    uint32_t actionB =
        static_cast<uint32_t>(os::actionOf(b));
    for (uint32_t action : precedence) {
        if (actionA == action)
            return a; // preserve a's RET_DATA payload
        if (actionB == action)
            return b;
    }
    return a;
}

BpfResult
FilterChain::run(const os::SeccompData &data) const
{
    if (_programs.empty())
        panic("FilterChain::run on empty chain");
    BpfResult combined;
    bool first = true;
    for (const auto &program : _programs) {
        BpfResult r = program.run(data);
        combined.insnsExecuted += r.insnsExecuted;
        combined.action = first
            ? r.action
            : mostRestrictiveAction(combined.action, r.action);
        first = false;
    }
    return combined;
}

size_t
FilterChain::totalInsns() const
{
    size_t total = 0;
    for (const auto &program : _programs)
        total += program.size();
    return total;
}

namespace {

/** Upper-bound estimate of a rule body's instruction count. */
size_t
estimateBodyInsns(const os::SyscallDesc &desc, const SyscallRule &rule)
{
    switch (rule.kind) {
      case RuleKind::AllowAll:
        return 1;
      case RuleKind::AllowTuples: {
        size_t perTuple = 1 + 4 * desc.checkedArgCount();
        return rule.tuples.size() * perTuple + 2;
      }
      case RuleKind::PerArgValues: {
        size_t total = 2;
        for (const auto &[arg, values] : rule.perArg)
            total += values.size() * 5 + 2;
        return total;
      }
    }
    return 1;
}

} // namespace

FilterChain
buildFilterChain(const Profile &profile, DispatchShape shape,
                 size_t max_insns_per_filter)
{
    // Cost shared by every program in the chain: the ID dispatch plus
    // prologue and epilogue.
    size_t dispatchInsns = 8 + 3 * profile.rules().size();
    size_t budget = max_insns_per_filter > dispatchInsns + 64
        ? max_insns_per_filter - dispatchInsns
        : 64;

    // Partition the argument-checking rules greedily by body size.
    std::vector<std::vector<uint16_t>> chunks;
    std::vector<uint16_t> current;
    size_t used = 0;
    for (const auto &[sid, rule] : profile.rules()) {
        if (rule.kind == RuleKind::AllowAll)
            continue;
        const auto *desc = os::syscallById(sid);
        if (!desc)
            continue;
        size_t cost = estimateBodyInsns(*desc, rule);
        if (cost > budget) {
            // Chains combine with most-restrictive-wins semantics, so a
            // single syscall's tuple whitelist cannot be split across
            // programs — the same hard limit real Seccomp deployments
            // face at BPF_MAXINSNS.
            fatal("buildFilterChain: rule for syscall %u needs ~%zu "
                  "instructions, beyond what one filter can hold",
                  sid, cost);
        }
        if (!current.empty() && used + cost > budget) {
            chunks.push_back(std::move(current));
            current.clear();
            used = 0;
        }
        current.push_back(sid);
        used += cost;
    }
    if (!current.empty())
        chunks.push_back(std::move(current));

    if (chunks.size() <= 1)
        return FilterChain({buildFilter(profile, shape)});

    // One program per chunk: it enforces its own argument rules and
    // defers the siblings' (treating those syscalls as ID-allowed).
    std::vector<BpfProgram> programs;
    for (const auto &chunk : chunks) {
        std::set<uint16_t> own(chunk.begin(), chunk.end());
        Profile view(profile.name() + "-chunk");
        view.setDenyAction(profile.denyAction());
        view.setDenyData(profile.denyData());
        for (const auto &[sid, rule] : profile.rules()) {
            if (rule.kind == RuleKind::AllowAll || !own.count(sid)) {
                view.allow(sid, rule.runtimeRequired);
                continue;
            }
            if (rule.kind == RuleKind::AllowTuples) {
                for (const auto &tuple : rule.tuples)
                    view.allowTuple(sid, tuple, rule.runtimeRequired);
            } else {
                for (const auto &[arg, values] : rule.perArg)
                    view.allowArgValues(sid, arg, values,
                                        rule.runtimeRequired);
            }
        }
        programs.push_back(buildFilter(view, shape));
    }
    return FilterChain(std::move(programs));
}

} // namespace draco::seccomp
