/**
 * @file
 * Umbrella header: the public API of the Draco reproduction library.
 *
 * Include this to get the full stack: syscall descriptors and the
 * seccomp ABI (os), BPF filters and profiles (seccomp), workload models
 * and trace synthesis (workload), real-trace ingestion and replay
 * (trace), both Draco implementations (core), the timing simulator
 * (sim), the event-tracing and telemetry layer (obs), and the hardware
 * cost model (hwmodel).
 */

#ifndef DRACO_DRACO_HH
#define DRACO_DRACO_HH

#include "core/checkspec.hh"
#include "core/hw_engine.hh"
#include "core/hw_structures.hh"
#include "core/smt.hh"
#include "core/software.hh"
#include "core/vat.hh"
#include "hash/crc64.hh"
#include "hash/cuckoo.hh"
#include "hwmodel/draco_costs.hh"
#include "hwmodel/sram.hh"
#include "obs/events.hh"
#include "obs/export.hh"
#include "obs/tracer.hh"
#include "os/kernelcosts.hh"
#include "os/regmap.hh"
#include "os/seccomp_abi.hh"
#include "os/syscalls.hh"
#include "seccomp/bpf.hh"
#include "seccomp/filter_builder.hh"
#include "seccomp/profile.hh"
#include "seccomp/profile_gen.hh"
#include "seccomp/profile_io.hh"
#include "seccomp/profiles_builtin.hh"
#include "sim/cache.hh"
#include "sim/machine.hh"
#include "sim/multicore.hh"
#include "sim/pricer.hh"
#include "sim/scheduler.hh"
#include "trace/dtrc.hh"
#include "trace/replay.hh"
#include "trace/strace.hh"
#include "support/logging.hh"
#include "support/random.hh"
#include "support/stats.hh"
#include "support/table.hh"
#include "workload/appmodel.hh"
#include "workload/generator.hh"
#include "workload/trace.hh"
#include "workload/tracefile.hh"

#endif // DRACO_DRACO_HH
