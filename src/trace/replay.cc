#include "trace/replay.hh"

#include <fstream>

#include "support/logging.hh"
#include "trace/dtrc.hh"
#include "workload/tracefile.hh"

namespace draco::trace {

OpenedTrace
openTraceStream(const std::string &path,
                const StraceOptions &straceOptions)
{
    OpenedTrace opened;

    if (isDtrcFile(path)) {
        auto reader = std::make_unique<TraceReader>(path);
        if (reader->failed()) {
            opened.error = reader->error();
            return opened;
        }
        opened.format = "dtrc";
        opened.stream = std::move(reader);
        return opened;
    }

    std::ifstream in(path);
    if (!in) {
        opened.error = "cannot open '" + path + "'";
        return opened;
    }
    std::string firstLine;
    std::getline(in, firstLine);
    in.seekg(0);

    if (firstLine == workload::kTraceMagic) {
        std::string error;
        workload::Trace trace = workload::readTrace(in, &error);
        if (!error.empty()) {
            opened.error = error;
            return opened;
        }
        opened.format = "text";
        opened.stream = std::make_unique<workload::OwningTraceStream>(
            std::move(trace));
        return opened;
    }

    StraceResult parsed = parseStrace(in, straceOptions);
    if (!parsed.ok()) {
        opened.error = parsed.error;
        return opened;
    }
    if (parsed.events.empty()) {
        opened.error = "'" + path +
            "' contains no recognizable trace events";
        return opened;
    }
    opened.format = "strace";
    opened.straceStats = parsed.stats;
    opened.stream = std::make_unique<workload::OwningTraceStream>(
        std::move(parsed.events));
    return opened;
}

RoundRobinSplitter::RoundRobinSplitter(workload::EventStream &source,
                                       size_t tenants)
    : _source(source), _queues(std::max<size_t>(1, tenants))
{
    _children.reserve(_queues.size());
    for (size_t i = 0; i < _queues.size(); ++i)
        _children.push_back(std::make_unique<Child>(*this, i));
}

workload::EventStream &
RoundRobinSplitter::child(size_t index)
{
    if (index >= _children.size())
        fatal("RoundRobinSplitter: child %zu of %zu", index,
              _children.size());
    return *_children[index];
}

bool
RoundRobinSplitter::pull(size_t index, workload::TraceEvent &out)
{
    std::deque<workload::TraceEvent> &queue = _queues[index];
    // Deal source events to their round-robin owners until this
    // tenant's turn comes up (or the source runs dry).
    while (queue.empty() && !_sourceDry) {
        workload::TraceEvent event;
        if (!_source.next(event)) {
            _sourceDry = true;
            break;
        }
        _queues[_nextTenant].push_back(event);
        _nextTenant = (_nextTenant + 1) % _queues.size();
    }
    if (queue.empty())
        return false;
    out = queue.front();
    queue.pop_front();
    return true;
}

std::vector<sim::CoreResult>
replayMulticoreRoundRobin(workload::EventStream &events,
                          const seccomp::Profile &profile, size_t cores,
                          sim::Mechanism mechanism,
                          const sim::MulticoreOptions &options,
                          const std::string &name)
{
    if (cores == 0)
        fatal("replayMulticoreRoundRobin: need at least one core");

    RoundRobinSplitter splitter(events, cores);
    std::vector<sim::TenantAssignment> tenants(cores);
    for (size_t i = 0; i < cores; ++i) {
        tenants[i].events = &splitter.child(i);
        tenants[i].profile = &profile;
        tenants[i].name = name + "-" + std::to_string(i);
        tenants[i].mechanism = mechanism;
    }
    sim::MulticoreSimulator simulator;
    return simulator.replay(tenants, options);
}

} // namespace draco::trace
