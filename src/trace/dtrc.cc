#include "trace/dtrc.hh"

#include <cstring>

#include "hash/crc64.hh"
#include "os/syscalls.hh"
#include "support/binio.hh"
#include "support/logging.hh"

namespace draco::trace {

using namespace binio;

namespace {

/** Pointer-argument slots of @p sid as a bitmask (0 = none known). */
uint8_t
pointerMaskOf(uint16_t sid)
{
    const auto *desc = os::syscallById(sid);
    return desc ? desc->pointerMask : 0;
}

/** The checked tuple: argument array with pointer slots zeroed. */
std::array<uint64_t, os::kMaxSyscallArgs>
checkedTuple(const os::SyscallRequest &req, uint8_t pointerMask)
{
    std::array<uint64_t, os::kMaxSyscallArgs> tuple = req.args;
    for (unsigned i = 0; i < os::kMaxSyscallArgs; ++i)
        if (pointerMask & (1u << i))
            tuple[i] = 0;
    return tuple;
}

/** Key of a (sid, slot) pointer-delta chain. */
uint32_t
pointerChainKey(uint16_t sid, unsigned slot)
{
    return (static_cast<uint32_t>(sid) << 3) | slot;
}

} // namespace

// --------------------------------------------------------------------
// TraceWriter
// --------------------------------------------------------------------

TraceWriter::TraceWriter(std::ostream &out, uint32_t blockEvents)
    : _out(out), _blockEvents(std::max(1u, blockEvents))
{
    writeHeader();
}

TraceWriter::TraceWriter(const std::string &path, uint32_t blockEvents)
    : _file(path, std::ios::binary), _out(_file),
      _blockEvents(std::max(1u, blockEvents))
{
    if (!_file)
        fatal("TraceWriter: cannot open '%s'", path.c_str());
    writeHeader();
}

TraceWriter::~TraceWriter()
{
    finish();
}

void
TraceWriter::writeHeader()
{
    std::string header(kDtrcMagic, sizeof(kDtrcMagic));
    putU32(header, kDtrcVersion | (0u << 16)); // u16 version, u16 flags.
    putU32(header, _blockEvents);
    _out.write(header.data(),
               static_cast<std::streamsize>(header.size()));
    resetBlockState();
}

void
TraceWriter::resetBlockState()
{
    _payload.clear();
    _blockCount = 0;
    _prevPc = 0;
    _prevWorkBits = 0;
    _prevBytesTouched = 0;
    _dict.clear();
    _prevPointer.clear();
}

void
TraceWriter::add(const workload::TraceEvent &event)
{
    if (_finished)
        panic("TraceWriter: add() after finish()");

    const os::SyscallRequest &req = event.req;
    uint8_t pointerMask = pointerMaskOf(req.sid);

    // User-work gaps travel as XOR against the previous gap's bit
    // pattern: a repeated value — fixed prologue costs, the constant
    // default gap of untimed captures — collapses to zero significant
    // bytes while arbitrary doubles stay bit-exact.
    uint64_t workBits;
    static_assert(sizeof(workBits) == sizeof(event.userWorkNs));
    std::memcpy(&workBits, &event.userWorkNs, sizeof(workBits));
    uint64_t workXor = workBits ^ _prevWorkBits;
    _prevWorkBits = workBits;
    unsigned workLen = 0;
    for (uint64_t rest = workXor; rest; rest >>= 8)
        ++workLen;

    bool bytesSame = event.bytesTouched == _prevBytesTouched;

    // One head varint packs the dictionary reference (0 = literal,
    // k+1 = entry k), the work-XOR byte count, and a bytes-unchanged
    // flag; for a dictionary hit with a constant footprint the whole
    // event head is typically a single byte.
    DictKey key{req.sid, req.pc, checkedTuple(req, pointerMask)};
    auto hit = _dict.find(key);
    uint64_t tag = hit != _dict.end() ? hit->second + 1 : 0;
    putVarint(_payload,
              (tag * 9 + workLen) * 2 + (bytesSame ? 0 : 1));

    if (hit == _dict.end()) {
        putVarint(_payload, req.sid);
        putDelta(_payload, req.pc, _prevPc);
        for (unsigned i = 0; i < os::kMaxSyscallArgs; ++i)
            if (!(pointerMask & (1u << i)))
                putVarint(_payload, req.args[i]);
        _dict.emplace(key, static_cast<uint32_t>(_dict.size()));
    }
    _prevPc = req.pc;

    // Pointer slots ride outside the dictionary: they change on every
    // call, delta-chained per (sid, slot) since real pointers cluster.
    for (unsigned i = 0; i < os::kMaxSyscallArgs; ++i) {
        if (!(pointerMask & (1u << i)))
            continue;
        uint64_t &prev = _prevPointer[pointerChainKey(req.sid, i)];
        putDelta(_payload, req.args[i], prev);
        prev = req.args[i];
    }

    for (unsigned i = 0; i < workLen; ++i)
        _payload.push_back(
            static_cast<uint8_t>((workXor >> (8 * i)) & 0xff));

    if (!bytesSame) {
        putDelta(_payload, event.bytesTouched, _prevBytesTouched);
        _prevBytesTouched = event.bytesTouched;
    }

    ++_blockCount;
    ++_totalEvents;
    if (_blockCount >= _blockEvents)
        flushBlock();
}

void
TraceWriter::flushBlock()
{
    if (_blockCount == 0)
        return;

    BlockInfo info;
    info.offset = static_cast<uint64_t>(_out.tellp());
    info.events = _blockCount;
    info.payloadBytes = static_cast<uint32_t>(_payload.size());

    std::string header;
    putU32(header, info.events);
    putU32(header, info.payloadBytes);
    putU64(header, crc64Ecma().compute(_payload.data(), _payload.size()));
    _out.write(header.data(),
               static_cast<std::streamsize>(header.size()));
    _out.write(reinterpret_cast<const char *>(_payload.data()),
               static_cast<std::streamsize>(_payload.size()));

    _index.push_back(info);
    resetBlockState();
}

void
TraceWriter::finish()
{
    if (_finished)
        return;
    flushBlock();

    // End-of-blocks marker, then the seekable index and footer.
    std::string tail;
    putU32(tail, 0);

    auto indexOffset =
        static_cast<uint64_t>(_out.tellp()) + tail.size();
    std::string index;
    putU32(index, static_cast<uint32_t>(_index.size()));
    for (const BlockInfo &block : _index) {
        putU64(index, block.offset);
        putU32(index, block.events);
        putU32(index, block.payloadBytes);
    }
    putU64(index, _totalEvents);

    tail += index;
    putU64(tail, crc64Ecma().compute(index.data(), index.size()));
    putU64(tail, indexOffset);
    tail.append(kDtrcIndexMagic, sizeof(kDtrcIndexMagic));
    _out.write(tail.data(), static_cast<std::streamsize>(tail.size()));
    _out.flush();
    if (!_out)
        fatal("TraceWriter: write failed");
    _finished = true;
}

// --------------------------------------------------------------------
// TraceReader
// --------------------------------------------------------------------

TraceReader::TraceReader(const std::string &path)
    : _in(path, std::ios::binary), _path(path)
{
    if (!_in) {
        fail("cannot open '" + path + "'");
        return;
    }
    char magic[sizeof(kDtrcMagic)];
    if (!readExact(_in, magic, sizeof(magic)) ||
        std::memcmp(magic, kDtrcMagic, sizeof(magic)) != 0) {
        fail("not a .dtrc file (bad magic)");
        return;
    }
    uint32_t versionFlags = 0, blockEvents = 0;
    if (!readU32(_in, versionFlags) || !readU32(_in, blockEvents)) {
        fail("truncated header");
        return;
    }
    if ((versionFlags & 0xffff) != kDtrcVersion)
        fail("unsupported version " +
             std::to_string(versionFlags & 0xffff));
}

void
TraceReader::fail(const std::string &message)
{
    _error = "TraceReader: " + message;
    _done = true;
}

bool
TraceReader::loadBlock()
{
    uint32_t events = 0;
    if (!readU32(_in, events)) {
        fail("truncated file (missing end-of-blocks marker)");
        return false;
    }
    if (events == 0) {
        // End marker: the index follows, which streaming ignores.
        _done = true;
        return false;
    }
    uint32_t payloadBytes = 0;
    uint64_t crc = 0;
    if (!readU32(_in, payloadBytes) || !readU64(_in, crc)) {
        fail("truncated block header");
        return false;
    }
    _payload.resize(payloadBytes);
    if (!readExact(_in, _payload.data(), payloadBytes)) {
        fail("truncated block (expected " +
             std::to_string(payloadBytes) + " payload bytes)");
        return false;
    }
    if (crc64Ecma().compute(_payload.data(), _payload.size()) != crc) {
        fail("block CRC mismatch (corrupt data)");
        return false;
    }

    _pos = 0;
    _blockRemaining = events;
    _prevPc = 0;
    _prevWorkBits = 0;
    _prevBytesTouched = 0;
    _dict.clear();
    _prevPointer.clear();
    return true;
}

bool
TraceReader::next(workload::TraceEvent &out)
{
    if (_done)
        return false;
    if (_blockRemaining == 0 && !loadBlock())
        return false;

    auto corrupt = [&]() {
        fail("corrupt block payload (event " +
             std::to_string(_eventsRead) + ")");
        return false;
    };

    uint64_t head;
    if (!takeVarint(_payload, _pos, head))
        return corrupt();
    bool bytesSame = (head & 1) == 0;
    unsigned workLen = static_cast<unsigned>((head >> 1) % 9);
    uint64_t tag = (head >> 1) / 9;

    uint16_t sid;
    uint64_t pc;
    std::array<uint64_t, os::kMaxSyscallArgs> args{};
    uint8_t pointerMask;
    if (tag == 0) {
        uint64_t rawSid;
        if (!takeVarint(_payload, _pos, rawSid) || rawSid > 0xffff)
            return corrupt();
        sid = static_cast<uint16_t>(rawSid);
        if (!takeDelta(_payload, _pos, _prevPc, pc))
            return corrupt();
        pointerMask = pointerMaskOf(sid);
        for (unsigned i = 0; i < os::kMaxSyscallArgs; ++i)
            if (!(pointerMask & (1u << i)))
                if (!takeVarint(_payload, _pos, args[i]))
                    return corrupt();
        _dict.push_back(DictEntry{sid, pc, args});
    } else {
        uint64_t index = tag - 1;
        if (index >= _dict.size())
            return corrupt();
        const DictEntry &entry = _dict[index];
        sid = entry.sid;
        pc = entry.pc;
        args = entry.args;
        pointerMask = pointerMaskOf(sid);
    }
    _prevPc = pc;

    for (unsigned i = 0; i < os::kMaxSyscallArgs; ++i) {
        if (!(pointerMask & (1u << i)))
            continue;
        uint64_t &prev = _prevPointer[pointerChainKey(sid, i)];
        if (!takeDelta(_payload, _pos, prev, args[i]))
            return corrupt();
        prev = args[i];
    }

    if (_pos + workLen > _payload.size())
        return corrupt();
    uint64_t workXor = 0;
    for (unsigned i = 0; i < workLen; ++i)
        workXor |= static_cast<uint64_t>(_payload[_pos + i]) << (8 * i);
    _pos += workLen;
    uint64_t workBits = workXor ^ _prevWorkBits;
    _prevWorkBits = workBits;

    uint64_t bytesTouched = _prevBytesTouched;
    if (!bytesSame) {
        if (!takeDelta(_payload, _pos, _prevBytesTouched, bytesTouched))
            return corrupt();
        _prevBytesTouched = bytesTouched;
    }

    out.req.sid = sid;
    out.req.pc = pc;
    out.req.args = args;
    std::memcpy(&out.userWorkNs, &workBits, sizeof(out.userWorkNs));
    out.bytesTouched = bytesTouched;

    --_blockRemaining;
    ++_eventsRead;
    if (_blockRemaining == 0 && _pos != _payload.size())
        return corrupt(); // Payload bytes left over: corrupt block.
    return true;
}

// --------------------------------------------------------------------
// Convenience entry points
// --------------------------------------------------------------------

void
writeDtrcFile(const workload::Trace &trace, const std::string &path,
              uint32_t blockEvents)
{
    TraceWriter writer(path, blockEvents);
    for (const auto &event : trace)
        writer.add(event);
    writer.finish();
}

workload::Trace
readDtrcFile(const std::string &path, std::string *error)
{
    TraceReader reader(path);
    workload::Trace trace;
    workload::TraceEvent event;
    while (reader.next(event))
        trace.push_back(event);
    if (reader.failed()) {
        if (!error)
            fatal("readDtrcFile: %s", reader.error().c_str());
        *error = reader.error();
        return {};
    }
    if (error)
        error->clear();
    return trace;
}

bool
isDtrcFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    char magic[sizeof(kDtrcMagic)];
    return in && readExact(in, magic, sizeof(magic)) &&
        std::memcmp(magic, kDtrcMagic, sizeof(magic)) == 0;
}

bool
inspectDtrc(const std::string &path, DtrcInfo &info, std::string &error)
{
    info = DtrcInfo{};
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        error = "cannot open '" + path + "'";
        return false;
    }
    char magic[sizeof(kDtrcMagic)];
    if (!readExact(in, magic, sizeof(magic)) ||
        std::memcmp(magic, kDtrcMagic, sizeof(magic)) != 0) {
        error = "not a .dtrc file (bad magic)";
        return false;
    }
    uint32_t versionFlags = 0;
    if (!readU32(in, versionFlags) || !readU32(in, info.blockEvents)) {
        error = "truncated header";
        return false;
    }
    info.version = static_cast<uint16_t>(versionFlags & 0xffff);

    // Fast path: the footer index.
    in.seekg(0, std::ios::end);
    auto fileSize = static_cast<uint64_t>(in.tellg());
    constexpr uint64_t kFooterBytes = 8 + 8 + sizeof(kDtrcIndexMagic);
    if (fileSize >= 16 + kFooterBytes) {
        in.seekg(static_cast<std::streamoff>(fileSize - kFooterBytes));
        uint64_t indexCrc = 0, indexOffset = 0;
        char tailMagic[sizeof(kDtrcIndexMagic)];
        if (readU64(in, indexCrc) && readU64(in, indexOffset) &&
            readExact(in, tailMagic, sizeof(tailMagic)) &&
            std::memcmp(tailMagic, kDtrcIndexMagic,
                        sizeof(tailMagic)) == 0 &&
            indexOffset + kFooterBytes < fileSize) {
            uint64_t indexBytes = fileSize - kFooterBytes - indexOffset;
            std::string index(indexBytes, '\0');
            in.seekg(static_cast<std::streamoff>(indexOffset));
            if (readExact(in, index.data(), index.size()) &&
                crc64Ecma().compute(index.data(), index.size()) ==
                    indexCrc) {
                size_t pos = 0;
                auto u32 = [&](uint32_t &v) {
                    v = 0;
                    for (int i = 0; i < 4; ++i)
                        v |= static_cast<uint32_t>(
                                 static_cast<uint8_t>(index[pos++]))
                            << (8 * i);
                };
                auto u64 = [&](uint64_t &v) {
                    v = 0;
                    for (int i = 0; i < 8; ++i)
                        v |= static_cast<uint64_t>(
                                 static_cast<uint8_t>(index[pos++]))
                            << (8 * i);
                };
                uint32_t blocks = 0;
                u32(blocks);
                if (index.size() == 4 + blocks * 16ull + 8) {
                    info.blocks.reserve(blocks);
                    for (uint32_t b = 0; b < blocks; ++b) {
                        BlockInfo block;
                        u64(block.offset);
                        u32(block.events);
                        u32(block.payloadBytes);
                        info.blocks.push_back(block);
                    }
                    u64(info.totalEvents);
                    info.indexed = true;
                    return true;
                }
            }
        }
    }

    // Fallback: scan block headers (index missing or damaged).
    in.clear();
    in.seekg(16);
    while (true) {
        BlockInfo block;
        block.offset = static_cast<uint64_t>(in.tellg());
        uint32_t events = 0;
        if (!readU32(in, events)) {
            error = "truncated file (missing end-of-blocks marker)";
            return false;
        }
        if (events == 0)
            break;
        uint32_t payloadBytes = 0;
        uint64_t crc = 0;
        if (!readU32(in, payloadBytes) || !readU64(in, crc)) {
            error = "truncated block header";
            return false;
        }
        block.events = events;
        block.payloadBytes = payloadBytes;
        in.seekg(payloadBytes, std::ios::cur);
        if (!in) {
            error = "truncated block payload";
            return false;
        }
        info.totalEvents += events;
        info.blocks.push_back(block);
    }
    return true;
}

} // namespace draco::trace
