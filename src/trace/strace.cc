#include "trace/strace.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

#include "os/syscalls.hh"

namespace draco::trace {

namespace {

/** FNV-1a of @p text masked to the 48 checkable argument bits. */
uint64_t
hashToken(const std::string &text)
{
    uint64_t h = 14695981039346656037ULL;
    for (char c : text) {
        h ^= static_cast<uint8_t>(c);
        h *= 1099511628211ULL;
    }
    return h & ((1ULL << os::kArgBitmaskBits) - 1);
}

std::string
trim(const std::string &text)
{
    size_t begin = text.find_first_not_of(" \t\r");
    if (begin == std::string::npos)
        return "";
    size_t end = text.find_last_not_of(" \t\r");
    return text.substr(begin, end - begin + 1);
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/**
 * Parse one argument token to 64 bits: numbers (decimal, hex, octal,
 * negative) verbatim, anything else — quoted strings, flag ORs,
 * structs, arrays — hashed deterministically. Both make the same token
 * map to the same value, which is all the VAT/SLB model needs.
 */
uint64_t
tokenValue(const std::string &raw)
{
    std::string token = trim(raw);
    if (token.empty())
        return 0;
    bool negative = token[0] == '-';
    size_t digits = negative ? 1 : 0;
    if (digits < token.size() &&
        std::isdigit(static_cast<unsigned char>(token[digits]))) {
        errno = 0;
        char *end = nullptr;
        if (negative) {
            auto value = std::strtoll(token.c_str(), &end, 0);
            if (errno == 0 && end && *end == '\0')
                return static_cast<uint64_t>(value);
        } else {
            auto value = std::strtoull(token.c_str(), &end, 0);
            if (errno == 0 && end && *end == '\0')
                return value;
        }
    }
    return hashToken(token);
}

/**
 * Split @p args at top-level commas: commas inside quotes, parens,
 * braces, or brackets belong to a single argument.
 */
std::vector<std::string>
splitArgs(const std::string &args)
{
    std::vector<std::string> out;
    if (trim(args).empty())
        return out;
    int depth = 0;
    bool quoted = false;
    std::string current;
    for (size_t i = 0; i < args.size(); ++i) {
        char c = args[i];
        if (quoted) {
            current.push_back(c);
            if (c == '\\' && i + 1 < args.size())
                current.push_back(args[++i]);
            else if (c == '"')
                quoted = false;
            continue;
        }
        switch (c) {
          case '"':
            quoted = true;
            current.push_back(c);
            break;
          case '(': case '[': case '{':
            ++depth;
            current.push_back(c);
            break;
          case ')': case ']': case '}':
            --depth;
            current.push_back(c);
            break;
          case ',':
            if (depth == 0) {
                out.push_back(current);
                current.clear();
            } else {
                current.push_back(c);
            }
            break;
          default:
            current.push_back(c);
        }
    }
    out.push_back(current);
    return out;
}

/** Per-pid demux state. */
struct PidState {
    std::string unfinished;   ///< Stashed `<unfinished ...>` prefix.
    bool hasUnfinished = false;
    int64_t lastTimestampNs = -1; ///< -1 = no timestamp seen yet.
    double lastDurationNs = 0.0;
};

/** Exact decimal-seconds to nanoseconds (epoch doubles lose ~100ns). */
int64_t
secondsToNs(uint64_t seconds, const std::string &fraction)
{
    uint64_t ns = seconds * 1000000000ULL;
    uint64_t scale = 100000000ULL;
    for (char c : fraction) {
        if (!std::isdigit(static_cast<unsigned char>(c)) || !scale)
            break;
        ns += static_cast<uint64_t>(c - '0') * scale;
        scale /= 10;
    }
    return static_cast<int64_t>(ns);
}

class Parser
{
  public:
    Parser(const StraceOptions &options, StraceResult &result)
        : _options(options), _result(result)
    {}

    /** @return false to stop (strict-mode failure). */
    bool
    consume(const std::string &rawLine, uint64_t lineNo)
    {
        std::string line = trim(rawLine);
        if (line.empty())
            return true;
        ++_result.stats.lines;

        uint32_t pid = 0;
        bool sawPid = stripPid(line, pid);
        int64_t timestampNs = stripTimestamp(line);
        uint64_t pc = 0;
        bool sawPc = stripInstructionPointer(line, pc);
        (void)sawPid;

        // Signal deliveries and process exits carry no syscall.
        if (line.rfind("---", 0) == 0 || line.rfind("+++", 0) == 0) {
            ++_result.stats.skippedMeta;
            return true;
        }

        PidState &state = _pids[pid];

        // `<... name resumed> tail` — splice onto the stashed prefix.
        if (line.rfind("<...", 0) == 0) {
            size_t mark = line.find("resumed>");
            if (mark == std::string::npos || !state.hasUnfinished)
                return malformed(lineNo, "resumed line without a "
                                         "matching unfinished call");
            line = state.unfinished + line.substr(mark + 8);
            state.unfinished.clear();
            state.hasUnfinished = false;
            ++_result.stats.splicedResumed;
        }

        // `name(args... <unfinished ...>` — stash until resumed.
        size_t unfinished = line.find("<unfinished");
        if (unfinished != std::string::npos) {
            state.unfinished = trim(line.substr(0, unfinished));
            state.hasUnfinished = true;
            return true;
        }

        return parseCall(line, lineNo, pid, timestampNs, sawPc, pc);
    }

    void
    finish()
    {
        for (auto &[pid, state] : _pids)
            if (state.hasUnfinished)
                ++_result.stats.danglingUnfinished;
    }

  private:
    bool
    malformed(uint64_t lineNo, const std::string &why)
    {
        if (_options.strict) {
            _result.error =
                "line " + std::to_string(lineNo) + ": " + why;
            return false;
        }
        ++_result.stats.skippedMalformed;
        return true;
    }

    /** `[pid 1234] ...` or `1234  ...` (strace -f output styles). */
    bool
    stripPid(std::string &line, uint32_t &pid)
    {
        if (line.rfind("[pid", 0) == 0) {
            size_t close = line.find(']');
            if (close != std::string::npos) {
                pid = static_cast<uint32_t>(
                    std::strtoul(line.c_str() + 4, nullptr, 10));
                line = trim(line.substr(close + 1));
                return true;
            }
        }
        // Leading bare pid: digits, then whitespace, then a non-digit
        // continuation (a lone leading number could also be an epoch
        // timestamp, but those always contain a '.').
        size_t i = 0;
        while (i < line.size() &&
               std::isdigit(static_cast<unsigned char>(line[i])))
            ++i;
        if (i > 0 && i < line.size() &&
            (line[i] == ' ' || line[i] == '\t')) {
            pid = static_cast<uint32_t>(
                std::strtoul(line.c_str(), nullptr, 10));
            line = trim(line.substr(i));
            return true;
        }
        return false;
    }

    /** `-ttt` epoch seconds or `-tt` wall-clock; returns ns or -1. */
    int64_t
    stripTimestamp(std::string &line)
    {
        size_t i = 0;
        while (i < line.size() &&
               (std::isdigit(static_cast<unsigned char>(line[i])) ||
                line[i] == '.' || line[i] == ':'))
            ++i;
        if (i == 0 || i >= line.size() ||
            (line[i] != ' ' && line[i] != '\t'))
            return -1;
        std::string token = line.substr(0, i);
        int64_t timestampNs = -1;
        size_t dot = token.find('.');
        std::string fraction =
            dot == std::string::npos ? "" : token.substr(dot + 1);
        if (token.find(':') != std::string::npos) {
            unsigned h = 0, m = 0, s = 0;
            if (std::sscanf(token.c_str(), "%u:%u:%u", &h, &m, &s) == 3)
                timestampNs =
                    secondsToNs(h * 3600ULL + m * 60ULL + s, fraction);
        } else if (dot != std::string::npos) {
            timestampNs = secondsToNs(
                std::strtoull(token.c_str(), nullptr, 10), fraction);
        } else {
            return -1; // A lone integer is a pid, not a timestamp.
        }
        line = trim(line.substr(i));
        return timestampNs;
    }

    /** `-i` call sites: `[00007f1bc4d0f6f9] name(...`. */
    bool
    stripInstructionPointer(std::string &line, uint64_t &pc)
    {
        if (line.empty() || line[0] != '[')
            return false;
        size_t close = line.find(']');
        if (close == std::string::npos)
            return false;
        std::string body = line.substr(1, close - 1);
        for (char c : body)
            if (!std::isxdigit(static_cast<unsigned char>(c)) &&
                c != 'x')
                return false;
        pc = std::strtoull(body.c_str(), nullptr, 16);
        line = trim(line.substr(close + 1));
        return true;
    }

    bool
    parseCall(const std::string &line, uint64_t lineNo, uint32_t pid,
              int64_t timestampNs, bool sawPc, uint64_t pc)
    {
        size_t open = line.find('(');
        if (open == std::string::npos || open == 0)
            return malformed(lineNo, "no syscall invocation found");
        std::string name = line.substr(0, open);
        for (char c : name)
            if (!isIdentChar(c))
                return malformed(lineNo, "bad syscall name '" + name +
                                             "'");

        // The result separator is the *last* " = " — argument strings
        // can contain the same characters.
        size_t sep = line.rfind(" = ");
        if (sep == std::string::npos || sep < open)
            return malformed(lineNo, "no return value found");
        size_t close = line.rfind(')', sep);
        if (close == std::string::npos || close < open)
            return malformed(lineNo, "unterminated argument list");

        const os::SyscallDesc *desc = os::syscallByName(name);
        if (!desc) {
            if (_options.strict) {
                _result.error = "line " + std::to_string(lineNo) +
                    ": unknown syscall '" + name + "'";
                return false;
            }
            ++_result.stats.skippedUnknown;
            return true;
        }

        std::string retText = trim(line.substr(sep + 3));
        double durationNs = 0.0;
        size_t durOpen = retText.rfind('<');
        if (durOpen != std::string::npos &&
            retText.back() == '>') {
            durationNs = std::strtod(retText.c_str() + durOpen + 1,
                                     nullptr) * 1e9;
            retText = trim(retText.substr(0, durOpen));
        }
        long long retValue = 0;
        if (!retText.empty() &&
            (retText[0] == '-' ||
             std::isdigit(static_cast<unsigned char>(retText[0]))))
            retValue = std::strtoll(retText.c_str(), nullptr, 0);

        workload::TraceEvent event;
        event.req.sid = desc->id;
        event.req.pc = sawPc
            ? pc
            : _options.pcBase + static_cast<uint64_t>(desc->id) * 0x40;
        auto tokens =
            splitArgs(line.substr(open + 1, close - open - 1));
        for (size_t i = 0;
             i < tokens.size() && i < os::kMaxSyscallArgs; ++i)
            event.req.args[i] = tokenValue(tokens[i]);

        PidState &state = _pids[pid];
        event.userWorkNs = _options.defaultUserWorkNs;
        if (timestampNs >= 0 && state.lastTimestampNs >= 0) {
            double gap = static_cast<double>(timestampNs -
                                             state.lastTimestampNs) -
                state.lastDurationNs;
            if (gap >= 0.0)
                event.userWorkNs = gap;
        }
        if (timestampNs >= 0) {
            state.lastTimestampNs = timestampNs;
            state.lastDurationNs = durationNs;
        }

        event.bytesTouched = _options.defaultBytesTouched;
        if (retValue > 0 && touchesReturnedBytes(desc->id))
            event.bytesTouched = static_cast<uint64_t>(retValue);

        if (_pidIndex.find(pid) == _pidIndex.end()) {
            _pidIndex.emplace(pid, _result.pids.size());
            _result.pids.push_back(pid);
        }
        _result.events.push_back(event);
        _result.eventPid.push_back(pid);
        ++_result.stats.events;
        return true;
    }

    /** Syscalls whose positive return counts bytes moved. */
    static bool
    touchesReturnedBytes(uint16_t sid)
    {
        using namespace os::sc;
        switch (sid) {
          case read: case write: case writev: case sendto:
          case recvfrom: case sendmsg: case recvmsg: case sendfile:
          case getdents:
            return true;
          default:
            return false;
        }
    }

    const StraceOptions &_options;
    StraceResult &_result;
    std::map<uint32_t, PidState> _pids;
    std::map<uint32_t, size_t> _pidIndex;
};

} // namespace

void
StraceStats::exportInto(MetricRegistry &registry,
                        const std::string &prefix) const
{
    auto name = [&](const char *metric) {
        return MetricRegistry::join(prefix, metric);
    };
    registry.setCounter(name("lines"), lines);
    registry.setCounter(name("events"), events);
    registry.setCounter(name("skipped_malformed"), skippedMalformed);
    registry.setCounter(name("skipped_unknown"), skippedUnknown);
    registry.setCounter(name("skipped_meta"), skippedMeta);
    registry.setCounter(name("spliced_resumed"), splicedResumed);
    registry.setCounter(name("dangling_unfinished"),
                        danglingUnfinished);
}

workload::Trace
StraceResult::eventsForPid(uint32_t pid) const
{
    workload::Trace trace;
    for (size_t i = 0; i < events.size(); ++i)
        if (eventPid[i] == pid)
            trace.push_back(events[i]);
    return trace;
}

StraceResult
parseStrace(std::istream &in, const StraceOptions &options)
{
    StraceResult result;
    Parser parser(options, result);
    std::string line;
    uint64_t lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        if (!parser.consume(line, lineNo))
            return result;
    }
    parser.finish();
    return result;
}

StraceResult
parseStraceFile(const std::string &path, const StraceOptions &options)
{
    std::ifstream in(path);
    if (!in) {
        StraceResult result;
        result.error = "cannot open '" + path + "'";
        return result;
    }
    return parseStrace(in, options);
}

} // namespace draco::trace
