/**
 * @file
 * Feeding recorded traces back into the simulators.
 *
 * Three trace encodings exist side by side — strace text captures,
 * the `# draco-trace` text format, and compact `.dtrc` binaries — and
 * the simulators only speak workload::EventStream. openTraceStream()
 * sniffs the format and returns a stream (the `.dtrc` path stays fully
 * streaming; the text formats materialize). RoundRobinSplitter deals
 * one recorded stream out to N tenants so a single capture can drive
 * the multicore consolidation experiment, and
 * replayMulticoreRoundRobin() wires the two together.
 */

#ifndef DRACO_TRACE_REPLAY_HH
#define DRACO_TRACE_REPLAY_HH

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "sim/multicore.hh"
#include "trace/strace.hh"
#include "workload/trace.hh"

namespace draco::trace {

/** A stream opened from disk plus what it turned out to be. */
struct OpenedTrace {
    /** The event stream (null when opening failed). */
    std::unique_ptr<workload::EventStream> stream;

    /** Detected encoding: "dtrc", "text", or "strace". */
    std::string format;

    /** strace ingestion tallies (populated for "strace" only). */
    StraceStats straceStats;

    /** Failure description ("" on success). */
    std::string error;

    /** @return true when a stream was opened. */
    bool ok() const { return stream != nullptr; }
};

/**
 * Open @p path as an event stream, sniffing the encoding: the `.dtrc`
 * magic selects the streaming binary reader, a `# draco-trace` header
 * selects the text format, and anything else is parsed as strace
 * output.
 *
 * @param path Input file.
 * @param straceOptions Knobs used when the file is strace text.
 * @return Stream plus detected format, or an error.
 */
OpenedTrace openTraceStream(const std::string &path,
                            const StraceOptions &straceOptions = {});

/**
 * Deals one source stream out to @p tenants child streams, event i
 * going to child i mod tenants — the round-robin tenant assignment of
 * the consolidation benchmark. Children buffer only what fairness
 * requires, so memory stays O(tenants) for lockstep consumers.
 */
class RoundRobinSplitter
{
  public:
    /**
     * @param source Underlying stream (not owned, must outlive this).
     * @param tenants Number of child streams (min 1).
     */
    RoundRobinSplitter(workload::EventStream &source, size_t tenants);

    /** @return Child stream @p index (owned by the splitter). */
    workload::EventStream &child(size_t index);

    /** @return Number of child streams. */
    size_t tenants() const { return _children.size(); }

  private:
    class Child final : public workload::EventStream
    {
      public:
        Child(RoundRobinSplitter &owner, size_t index)
            : _owner(owner), _index(index)
        {}

        bool
        next(workload::TraceEvent &out) override
        {
            return _owner.pull(_index, out);
        }

      private:
        RoundRobinSplitter &_owner;
        size_t _index;
    };

    bool pull(size_t index, workload::TraceEvent &out);

    workload::EventStream &_source;
    bool _sourceDry = false;
    size_t _nextTenant = 0; ///< Destination of the next source event.
    std::vector<std::deque<workload::TraceEvent>> _queues;
    std::vector<std::unique_ptr<Child>> _children;
};

/**
 * Run the multicore consolidation experiment from one recorded stream:
 * events are dealt round-robin to @p cores tenants, every tenant runs
 * @p mechanism under @p profile, and the cores couple through the
 * shared L3 as in MulticoreSimulator::run.
 *
 * @param events Source stream (consumed).
 * @param profile Seccomp profile every tenant runs under.
 * @param cores Number of simulated cores/tenants.
 * @param mechanism Checking mechanism on every core.
 * @param options Experiment knobs.
 * @param name Reported workload name (suffixed with the core index).
 * @return One result per core.
 */
std::vector<sim::CoreResult> replayMulticoreRoundRobin(
    workload::EventStream &events, const seccomp::Profile &profile,
    size_t cores, sim::Mechanism mechanism,
    const sim::MulticoreOptions &options,
    const std::string &name = "tenant");

} // namespace draco::trace

#endif // DRACO_TRACE_REPLAY_HH
