/**
 * @file
 * The `.dtrc` compact binary trace format.
 *
 * Draco's workloads are syscall streams with extreme argument locality
 * (Fig. 3: a handful of (syscall, argument-tuple) pairs cover almost
 * all calls), and `.dtrc` exploits exactly that: events are packed into
 * fixed-capacity blocks, each block carrying a per-block dictionary of
 * (sid, pc, checked-argument-tuple) triples, so a repeated tuple costs
 * one or two bytes. Pointer arguments — re-randomized per call and
 * never checked — are delta-encoded against the previous value of the
 * same (sid, slot), and user-work gaps are XOR-chained doubles with a
 * length prefix, so repeated gap values (fixed prologue costs, default
 * gaps of untimed strace captures) cost one byte while arbitrary
 * doubles stay bit-exact. Every block is independently decodable
 * (dictionary and deltas reset per block), covered by a CRC-64
 * checksum, and listed
 * in a seekable index at the end of the file; readers and writers
 * stream with O(1) memory, so million-user-scale corpora never fully
 * materialize. The on-disk layout is specified in DESIGN.md §9.
 */

#ifndef DRACO_TRACE_DTRC_HH
#define DRACO_TRACE_DTRC_HH

#include <cstdint>
#include <fstream>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "workload/trace.hh"

namespace draco::trace {

/** First 8 bytes of every `.dtrc` file. */
inline constexpr char kDtrcMagic[8] = {'d', 't', 'r', 'c', '-', 'v',
                                       '1', '\n'};

/** Last 8 bytes of a complete (indexed) `.dtrc` file. */
inline constexpr char kDtrcIndexMagic[8] = {'d', 't', 'r', 'c', 'i',
                                            'd', 'x', '\n'};

/** Format version written into the header. */
inline constexpr uint16_t kDtrcVersion = 1;

/** Default events per block. */
inline constexpr uint32_t kDtrcBlockEvents = 4096;

/** One block's entry in the seekable index. */
struct BlockInfo {
    uint64_t offset = 0;       ///< File offset of the block header.
    uint32_t events = 0;       ///< Events encoded in the block.
    uint32_t payloadBytes = 0; ///< Encoded payload size.
};

/** Whole-file description (header plus index). */
struct DtrcInfo {
    uint16_t version = 0;
    uint32_t blockEvents = 0;    ///< Writer's block capacity.
    uint64_t totalEvents = 0;
    bool indexed = false;        ///< Footer index present and valid.
    std::vector<BlockInfo> blocks;
};

/**
 * Streaming `.dtrc` encoder.
 *
 * Events are buffered per block and flushed when the block fills;
 * finish() (or destruction) flushes the tail block and appends the
 * index. Memory use is bounded by one block regardless of trace
 * length. Identical event sequences encode to identical bytes.
 */
class TraceWriter
{
  public:
    /**
     * Write to @p out (kept open by the caller, must be binary).
     *
     * @param out Destination stream.
     * @param blockEvents Events per block (min 1).
     */
    explicit TraceWriter(std::ostream &out,
                         uint32_t blockEvents = kDtrcBlockEvents);

    /** Open @p path for writing; fatal() when it cannot be opened. */
    explicit TraceWriter(const std::string &path,
                         uint32_t blockEvents = kDtrcBlockEvents);

    /** Flushes and finalizes unless finish() already ran. */
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Append one event. */
    void add(const workload::TraceEvent &event);

    /** Flush the tail block and write the index; idempotent. */
    void finish();

    /** @return Events written so far. */
    uint64_t eventsWritten() const { return _totalEvents; }

  private:
    struct DictKey {
        uint16_t sid;
        uint64_t pc;
        std::array<uint64_t, os::kMaxSyscallArgs> args;

        bool
        operator<(const DictKey &o) const
        {
            if (sid != o.sid)
                return sid < o.sid;
            if (pc != o.pc)
                return pc < o.pc;
            return args < o.args;
        }
    };

    void resetBlockState();
    void flushBlock();
    void writeHeader();

    std::ofstream _file;
    std::ostream &_out;
    uint32_t _blockEvents;
    uint64_t _totalEvents = 0;
    bool _finished = false;

    // Per-block encoder state.
    std::vector<uint8_t> _payload;
    uint32_t _blockCount = 0;
    uint64_t _prevPc = 0;
    uint64_t _prevWorkBits = 0;
    uint64_t _prevBytesTouched = 0;
    std::map<DictKey, uint32_t> _dict;
    std::map<uint32_t, uint64_t> _prevPointer; ///< (sid<<3|slot) → value.

    std::vector<BlockInfo> _index;
};

/**
 * Streaming `.dtrc` decoder implementing workload::EventStream.
 *
 * Reads block by block with O(1) memory. Format errors (bad magic,
 * truncated block, CRC mismatch) never crash: next() returns false and
 * failed()/error() report what went wrong, so callers can distinguish
 * clean end-of-stream from corruption.
 */
class TraceReader final : public workload::EventStream
{
  public:
    /** Open @p path; check failed() before streaming. */
    explicit TraceReader(const std::string &path);

    bool next(workload::TraceEvent &out) override;

    /** @return true when the stream is in an error state. */
    bool failed() const { return !_error.empty(); }

    /** @return Description of the failure ("" when healthy). */
    const std::string &error() const { return _error; }

    /** @return Events decoded so far. */
    uint64_t eventsRead() const { return _eventsRead; }

  private:
    bool loadBlock();
    void fail(const std::string &message);

    std::ifstream _in;
    std::string _path;
    std::string _error;
    bool _done = false;
    uint64_t _eventsRead = 0;

    // Current decoded block.
    std::vector<uint8_t> _payload;
    size_t _pos = 0;
    uint32_t _blockRemaining = 0;

    // Per-block decoder state (mirrors the writer).
    uint64_t _prevPc = 0;
    uint64_t _prevWorkBits = 0;
    uint64_t _prevBytesTouched = 0;
    struct DictEntry {
        uint16_t sid;
        uint64_t pc;
        std::array<uint64_t, os::kMaxSyscallArgs> args;
    };
    std::vector<DictEntry> _dict;
    std::map<uint32_t, uint64_t> _prevPointer;
};

/** Serialize @p trace to @p path; fatal() on I/O failure. */
void writeDtrcFile(const workload::Trace &trace, const std::string &path,
                   uint32_t blockEvents = kDtrcBlockEvents);

/**
 * Materialize the whole trace at @p path.
 *
 * @param path Input file.
 * @param error Receives a message on failure (fatal() when null).
 * @return The decoded trace (empty when parsing failed and @p error
 *         was set).
 */
workload::Trace readDtrcFile(const std::string &path,
                             std::string *error = nullptr);

/**
 * Read the header and index of @p path without decoding events.
 *
 * Prefers the footer index (O(1) seek); falls back to scanning block
 * headers when the index is missing or damaged.
 *
 * @param path Input file.
 * @param info Receives the description.
 * @param error Receives a message on failure.
 * @return true on success.
 */
bool inspectDtrc(const std::string &path, DtrcInfo &info,
                 std::string &error);

/** @return true when @p path starts with the `.dtrc` magic. */
bool isDtrcFile(const std::string &path);

} // namespace draco::trace

#endif // DRACO_TRACE_DTRC_HH
