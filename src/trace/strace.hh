/**
 * @file
 * strace text-output ingestion.
 *
 * Draco's inputs are syscall streams; the most common way to record one
 * from a real application is `strace -f` (ideally with `-ttt -T -i` for
 * timestamps, durations, and call sites). This parser turns that text
 * into workload::TraceEvents: syscall names resolve to SIDs through
 * os::syscalls, `[pid N]`/leading-pid prefixes demultiplex interleaved
 * processes, `<unfinished ...>`/`<... resumed>` pairs are spliced back
 * together, and timestamps become per-pid user-work gaps. Parsing is
 * tolerant by default — malformed lines and unknown syscalls are
 * counted and skipped, with the tallies exportable into a
 * MetricRegistry — because real captures are messy; strict mode turns
 * the first problem into a line-numbered error instead.
 */

#ifndef DRACO_TRACE_STRACE_HH
#define DRACO_TRACE_STRACE_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "support/metrics.hh"
#include "workload/trace.hh"

namespace draco::trace {

/** Ingestion knobs. */
struct StraceOptions {
    /** Fail on the first malformed line instead of skipping it. */
    bool strict = false;

    /**
     * User work charged to an event when the capture has no usable
     * timestamps (or for the first event of each pid).
     */
    double defaultUserWorkNs = 3000.0;

    /** Gap traffic charged when the return value gives no better hint. */
    uint64_t defaultBytesTouched = 4096;

    /**
     * Base address for synthesized call sites when the capture lacks
     * `-i` instruction pointers (one site per syscall id).
     */
    uint64_t pcBase = 0x400000;
};

/** Count-and-skip tallies from one parse. */
struct StraceStats {
    uint64_t lines = 0;             ///< Non-empty input lines seen.
    uint64_t events = 0;            ///< Events produced.
    uint64_t skippedMalformed = 0;  ///< Unparseable lines skipped.
    uint64_t skippedUnknown = 0;    ///< Unknown-syscall lines skipped.
    uint64_t skippedMeta = 0;       ///< Signal/exit annotation lines.
    uint64_t splicedResumed = 0;    ///< unfinished/resumed pairs joined.
    uint64_t danglingUnfinished = 0;///< Unfinished calls never resumed.

    /** Export every tally as a counter under @p prefix. */
    void exportInto(MetricRegistry &registry,
                    const std::string &prefix = "trace.strace") const;
};

/** Everything one parse produced. */
struct StraceResult {
    /** Events in capture order, all pids interleaved. */
    std::vector<workload::TraceEvent> events;

    /** Parallel to events: the pid each event belongs to. */
    std::vector<uint32_t> eventPid;

    /** Distinct pids in first-appearance order. */
    std::vector<uint32_t> pids;

    StraceStats stats;

    /** Strict-mode failure ("" when parsing succeeded). */
    std::string error;

    /** @return true when no strict-mode error was recorded. */
    bool ok() const { return error.empty(); }

    /** @return Number of distinct pids in the capture. */
    size_t distinctPids() const { return pids.size(); }

    /** @return The events of @p pid only, in capture order. */
    workload::Trace eventsForPid(uint32_t pid) const;
};

/**
 * Parse strace text from @p in.
 *
 * @param in Input stream of strace lines.
 * @param options Ingestion knobs.
 * @return Parsed events plus tallies; result.error is set (and parsing
 *         stops early) only in strict mode.
 */
StraceResult parseStrace(std::istream &in,
                         const StraceOptions &options = {});

/** Parse the file at @p path; sets result.error when it cannot open. */
StraceResult parseStraceFile(const std::string &path,
                             const StraceOptions &options = {});

} // namespace draco::trace

#endif // DRACO_TRACE_STRACE_HH
