#include "os/kernelcosts.hh"

namespace draco::os {

const KernelCosts &
newKernelCosts()
{
    static const KernelCosts costs = {
        .name = "ubuntu18.04-linux5.3-jit-nomitigations",
        .syscallBaseNs = 120.0,
        .seccompEntryNs = 14.0,
        .bpfInsnNs = 0.40,
        .dracoSptLookupNs = 3.5,
        .dracoHashFixedNs = 4.0,
        .dracoHashPerByteNs = 0.24,
        .dracoVatProbeNs = 3.5,
        .dracoVatInsertNs = 150.0,
        .ctxSwitchNs = 1200.0,
    };
    return costs;
}

const KernelCosts &
oldKernelCosts()
{
    static const KernelCosts costs = {
        .name = "centos7.6-linux3.10-interp-kpti-spectre",
        .syscallBaseNs = 350.0,
        .seccompEntryNs = 40.0,
        .bpfInsnNs = 4.5,
        .dracoSptLookupNs = 5.0,
        .dracoHashFixedNs = 5.5,
        .dracoHashPerByteNs = 0.40,
        .dracoVatProbeNs = 5.0,
        .dracoVatInsertNs = 180.0,
        .ctxSwitchNs = 2500.0,
    };
    return costs;
}

} // namespace draco::os
