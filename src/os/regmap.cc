#include "os/regmap.hh"

#include "support/logging.hh"

namespace draco::os {

const char *
regName(Reg reg)
{
    static const char *names[kGprCount] = {
        "rax", "rbx", "rcx", "rdx", "rsi", "rdi", "rbp", "rsp",
        "r8",  "r9",  "r10", "r11", "r12", "r13", "r14", "r15",
    };
    return names[static_cast<size_t>(reg)];
}

ArgRegisterMap::ArgRegisterMap(std::string name, Reg id_reg,
                               std::array<Reg, kMaxSyscallArgs> arg_regs)
    : _name(std::move(name)), _idReg(id_reg), _argRegs(arg_regs)
{
    for (Reg arg : _argRegs)
        if (arg == _idReg)
            fatal("ArgRegisterMap '%s': ID register %s reused for an "
                  "argument",
                  _name.c_str(), regName(_idReg));
}

const ArgRegisterMap &
ArgRegisterMap::linuxSyscall()
{
    static const ArgRegisterMap map(
        "linux-x86_64-syscall", Reg::Rax,
        {Reg::Rdi, Reg::Rsi, Reg::Rdx, Reg::R10, Reg::R8, Reg::R9});
    return map;
}

const ArgRegisterMap &
ArgRegisterMap::xenHypercall()
{
    static const ArgRegisterMap map(
        "xen-x86_64-hypercall", Reg::Rax,
        {Reg::Rdi, Reg::Rsi, Reg::Rdx, Reg::R10, Reg::R8, Reg::R9});
    return map;
}

Reg
ArgRegisterMap::argReg(unsigned i) const
{
    if (i >= kMaxSyscallArgs)
        fatal("ArgRegisterMap: argument index %u out of range", i);
    return _argRegs[i];
}

SyscallRequest
ArgRegisterMap::extract(const RegisterFile &regs) const
{
    SyscallRequest req;
    req.pc = regs.pc;
    req.sid = static_cast<uint16_t>(regs[_idReg]);
    for (unsigned i = 0; i < kMaxSyscallArgs; ++i)
        req.args[i] = regs[_argRegs[i]];
    return req;
}

RegisterFile
ArgRegisterMap::materialize(const SyscallRequest &req) const
{
    RegisterFile regs;
    regs.pc = req.pc;
    regs[_idReg] = req.sid;
    for (unsigned i = 0; i < kMaxSyscallArgs; ++i)
        regs[_argRegs[i]] = req.args[i];
    return regs;
}

} // namespace draco::os
