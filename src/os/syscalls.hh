/**
 * @file
 * x86-64 Linux system call descriptor table.
 *
 * Draco's SPT entry for a syscall needs (i) its ID, (ii) which argument
 * bytes participate in checking — the 48-bit Argument Bitmask of §V-B —
 * and (iii) how many checkable (non-pointer) arguments it takes, which
 * selects the SLB subtable (§VI-A). This module is the source of truth
 * for all of that: one descriptor per native x86-64 syscall of the
 * Linux 5.3 era (ids 0–334 and 424–435), with per-argument byte widths
 * and pointer flags. Seccomp (and hence Draco) never checks pointer
 * arguments because of TOCTOU (§II-B), so pointer args are excluded from
 * bitmasks and argument counts.
 */

#ifndef DRACO_OS_SYSCALLS_HH
#define DRACO_OS_SYSCALLS_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace draco::os {

/** Maximum number of syscall arguments in the Linux ABI. */
inline constexpr unsigned kMaxSyscallArgs = 6;

/** Bytes of argument payload covered by the Argument Bitmask (6 × 8). */
inline constexpr unsigned kArgBitmaskBits = 48;

/** One system call's static description. */
struct SyscallDesc {
    uint16_t id;          ///< Native x86-64 syscall number.
    const char *name;     ///< Kernel entry-point name.
    uint8_t nargs;        ///< Total arguments, 0..6.
    uint8_t pointerMask;  ///< Bit i set => argument i is a pointer.
    uint8_t wideMask;     ///< Bit i set => scalar argument i is 8 bytes.

    /** @return Width in bytes of argument @p i (0 if beyond nargs). */
    unsigned argBytes(unsigned i) const;

    /** @return true if argument @p i is a pointer (never checked). */
    bool argIsPointer(unsigned i) const;

    /** @return Number of checkable (non-pointer) arguments. */
    unsigned checkedArgCount() const;

    /**
     * @return The 48-bit Argument Bitmask: bit (arg*8 + byte) is set when
     *         that byte of a non-pointer argument participates in checks.
     */
    uint64_t argumentBitmask() const;
};

/** @return All descriptors, ordered by ascending id. */
const std::vector<SyscallDesc> &syscallTable();

/** @return Descriptor for @p id, or nullptr if the id is not defined. */
const SyscallDesc *syscallById(uint16_t id);

/** @return Descriptor whose name equals @p name, or nullptr. */
const SyscallDesc *syscallByName(const std::string &name);

/** @return One past the largest defined syscall id (table bound). */
uint16_t syscallIdBound();

/**
 * Total syscalls in the kernel the paper measured (Fig. 15a's `linux`
 * bar). Our descriptor table enumerates the native x86-64 entries; the
 * paper's count additionally includes non-native ABIs.
 */
inline constexpr unsigned kPaperLinuxSyscallCount = 403;

/** Convenience ids for the syscalls the workloads and tests name a lot. */
namespace sc {
inline constexpr uint16_t read = 0;
inline constexpr uint16_t write = 1;
inline constexpr uint16_t open = 2;
inline constexpr uint16_t close = 3;
inline constexpr uint16_t stat = 4;
inline constexpr uint16_t fstat = 5;
inline constexpr uint16_t poll = 7;
inline constexpr uint16_t lseek = 8;
inline constexpr uint16_t mmap = 9;
inline constexpr uint16_t mprotect = 10;
inline constexpr uint16_t munmap = 11;
inline constexpr uint16_t brk = 12;
inline constexpr uint16_t ioctl = 16;
inline constexpr uint16_t writev = 20;
inline constexpr uint16_t access = 21;
inline constexpr uint16_t pipe = 22;
inline constexpr uint16_t select = 23;
inline constexpr uint16_t sched_yield = 24;
inline constexpr uint16_t madvise = 28;
inline constexpr uint16_t dup = 32;
inline constexpr uint16_t nanosleep = 35;
inline constexpr uint16_t getpid = 39;
inline constexpr uint16_t sendfile = 40;
inline constexpr uint16_t socket = 41;
inline constexpr uint16_t connect = 42;
inline constexpr uint16_t accept = 43;
inline constexpr uint16_t sendto = 44;
inline constexpr uint16_t recvfrom = 45;
inline constexpr uint16_t sendmsg = 46;
inline constexpr uint16_t recvmsg = 47;
inline constexpr uint16_t bind = 49;
inline constexpr uint16_t listen = 50;
inline constexpr uint16_t clone = 56;
inline constexpr uint16_t fork = 57;
inline constexpr uint16_t execve = 59;
inline constexpr uint16_t exit = 60;
inline constexpr uint16_t wait4 = 61;
inline constexpr uint16_t kill = 62;
inline constexpr uint16_t fcntl = 72;
inline constexpr uint16_t fsync = 74;
inline constexpr uint16_t getdents = 78;
inline constexpr uint16_t getcwd = 79;
inline constexpr uint16_t unlink = 87;
inline constexpr uint16_t times = 100;
inline constexpr uint16_t getppid = 110;
inline constexpr uint16_t personality = 135;
inline constexpr uint16_t futex = 202;
inline constexpr uint16_t epoll_wait = 232;
inline constexpr uint16_t epoll_ctl = 233;
inline constexpr uint16_t mq_timedsend = 242;
inline constexpr uint16_t mq_timedreceive = 243;
inline constexpr uint16_t openat = 257;
inline constexpr uint16_t accept4 = 288;
inline constexpr uint16_t epoll_create1 = 291;
inline constexpr uint16_t getrandom = 318;
inline constexpr uint16_t seccomp = 317;
inline constexpr uint16_t exit_group = 231;
inline constexpr uint16_t epoll_pwait = 281;
} // namespace sc

} // namespace draco::os

#endif // DRACO_OS_SYSCALLS_HH
