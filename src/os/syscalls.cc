#include "os/syscalls.hh"

#include <unordered_map>

#include "support/logging.hh"

namespace draco::os {

unsigned
SyscallDesc::argBytes(unsigned i) const
{
    if (i >= nargs)
        return 0;
    if (pointerMask & (1u << i))
        return 8;
    return (wideMask & (1u << i)) ? 8 : 4;
}

bool
SyscallDesc::argIsPointer(unsigned i) const
{
    return i < nargs && (pointerMask & (1u << i));
}

unsigned
SyscallDesc::checkedArgCount() const
{
    unsigned n = 0;
    for (unsigned i = 0; i < nargs; ++i)
        if (!argIsPointer(i))
            ++n;
    return n;
}

uint64_t
SyscallDesc::argumentBitmask() const
{
    // Checked arguments are compared as full 64-bit register values,
    // matching what a seccomp filter sees in seccomp_data: all eight
    // bytes of every non-pointer argument participate. (argBytes()
    // remains available as ABI metadata for value synthesis and cost
    // estimation.)
    uint64_t mask = 0;
    for (unsigned i = 0; i < nargs; ++i) {
        if (argIsPointer(i))
            continue;
        mask |= 0xffULL << (i * 8);
    }
    return mask;
}

namespace {

// SC(id, name, nargs, pointerMask, wideMask)
//
// pointerMask bit i: argument i is a user pointer (excluded from checks,
// per §II-B TOCTOU). wideMask bit i: scalar argument i is 8 bytes wide
// (off_t, size_t, unsigned long); other scalars are 4 bytes. The table
// follows the native x86-64 syscall numbering of the Linux 5.3 era.
#define SYSCALL_LIST(SC) \
    SC(0, read, 3, 0b010, 0b100) \
    SC(1, write, 3, 0b010, 0b100) \
    SC(2, open, 3, 0b001, 0b000) \
    SC(3, close, 1, 0b0, 0b0) \
    SC(4, stat, 2, 0b11, 0b00) \
    SC(5, fstat, 2, 0b10, 0b00) \
    SC(6, lstat, 2, 0b11, 0b00) \
    SC(7, poll, 3, 0b001, 0b010) \
    SC(8, lseek, 3, 0b000, 0b010) \
    SC(9, mmap, 6, 0b000001, 0b100010) \
    SC(10, mprotect, 3, 0b001, 0b010) \
    SC(11, munmap, 2, 0b01, 0b10) \
    SC(12, brk, 1, 0b1, 0b0) \
    SC(13, rt_sigaction, 4, 0b0110, 0b1000) \
    SC(14, rt_sigprocmask, 4, 0b0110, 0b1000) \
    SC(15, rt_sigreturn, 0, 0b0, 0b0) \
    SC(16, ioctl, 3, 0b100, 0b000) \
    SC(17, pread64, 4, 0b0010, 0b1100) \
    SC(18, pwrite64, 4, 0b0010, 0b1100) \
    SC(19, readv, 3, 0b010, 0b000) \
    SC(20, writev, 3, 0b010, 0b000) \
    SC(21, access, 2, 0b01, 0b00) \
    SC(22, pipe, 1, 0b1, 0b0) \
    SC(23, select, 5, 0b11110, 0b00000) \
    SC(24, sched_yield, 0, 0b0, 0b0) \
    SC(25, mremap, 5, 0b10001, 0b00110) \
    SC(26, msync, 3, 0b001, 0b010) \
    SC(27, mincore, 3, 0b101, 0b010) \
    SC(28, madvise, 3, 0b001, 0b010) \
    SC(29, shmget, 3, 0b000, 0b010) \
    SC(30, shmat, 3, 0b010, 0b000) \
    SC(31, shmctl, 3, 0b100, 0b000) \
    SC(32, dup, 1, 0b0, 0b0) \
    SC(33, dup2, 2, 0b00, 0b00) \
    SC(34, pause, 0, 0b0, 0b0) \
    SC(35, nanosleep, 2, 0b11, 0b00) \
    SC(36, getitimer, 2, 0b10, 0b00) \
    SC(37, alarm, 1, 0b0, 0b0) \
    SC(38, setitimer, 3, 0b110, 0b000) \
    SC(39, getpid, 0, 0b0, 0b0) \
    SC(40, sendfile, 4, 0b0100, 0b1000) \
    SC(41, socket, 3, 0b000, 0b000) \
    SC(42, connect, 3, 0b010, 0b000) \
    SC(43, accept, 3, 0b110, 0b000) \
    SC(44, sendto, 6, 0b010010, 0b000100) \
    SC(45, recvfrom, 6, 0b110010, 0b000100) \
    SC(46, sendmsg, 3, 0b010, 0b000) \
    SC(47, recvmsg, 3, 0b010, 0b000) \
    SC(48, shutdown, 2, 0b00, 0b00) \
    SC(49, bind, 3, 0b010, 0b000) \
    SC(50, listen, 2, 0b00, 0b00) \
    SC(51, getsockname, 3, 0b110, 0b000) \
    SC(52, getpeername, 3, 0b110, 0b000) \
    SC(53, socketpair, 4, 0b1000, 0b0000) \
    SC(54, setsockopt, 5, 0b01000, 0b00000) \
    SC(55, getsockopt, 5, 0b11000, 0b00000) \
    SC(56, clone, 5, 0b01110, 0b10001) \
    SC(57, fork, 0, 0b0, 0b0) \
    SC(58, vfork, 0, 0b0, 0b0) \
    SC(59, execve, 3, 0b111, 0b000) \
    SC(60, exit, 1, 0b0, 0b0) \
    SC(61, wait4, 4, 0b1010, 0b0000) \
    SC(62, kill, 2, 0b00, 0b00) \
    SC(63, uname, 1, 0b1, 0b0) \
    SC(64, semget, 3, 0b000, 0b000) \
    SC(65, semop, 3, 0b010, 0b100) \
    SC(66, semctl, 4, 0b0000, 0b0000) \
    SC(67, shmdt, 1, 0b1, 0b0) \
    SC(68, msgget, 2, 0b00, 0b00) \
    SC(69, msgsnd, 4, 0b0010, 0b0100) \
    SC(70, msgrcv, 5, 0b00010, 0b01100) \
    SC(71, msgctl, 3, 0b100, 0b000) \
    SC(72, fcntl, 3, 0b000, 0b000) \
    SC(73, flock, 2, 0b00, 0b00) \
    SC(74, fsync, 1, 0b0, 0b0) \
    SC(75, fdatasync, 1, 0b0, 0b0) \
    SC(76, truncate, 2, 0b01, 0b10) \
    SC(77, ftruncate, 2, 0b00, 0b10) \
    SC(78, getdents, 3, 0b010, 0b000) \
    SC(79, getcwd, 2, 0b01, 0b10) \
    SC(80, chdir, 1, 0b1, 0b0) \
    SC(81, fchdir, 1, 0b0, 0b0) \
    SC(82, rename, 2, 0b11, 0b00) \
    SC(83, mkdir, 2, 0b01, 0b00) \
    SC(84, rmdir, 1, 0b1, 0b0) \
    SC(85, creat, 2, 0b01, 0b00) \
    SC(86, link, 2, 0b11, 0b00) \
    SC(87, unlink, 1, 0b1, 0b0) \
    SC(88, symlink, 2, 0b11, 0b00) \
    SC(89, readlink, 3, 0b011, 0b100) \
    SC(90, chmod, 2, 0b01, 0b00) \
    SC(91, fchmod, 2, 0b00, 0b00) \
    SC(92, chown, 3, 0b001, 0b000) \
    SC(93, fchown, 3, 0b000, 0b000) \
    SC(94, lchown, 3, 0b001, 0b000) \
    SC(95, umask, 1, 0b0, 0b0) \
    SC(96, gettimeofday, 2, 0b11, 0b00) \
    SC(97, getrlimit, 2, 0b10, 0b00) \
    SC(98, getrusage, 2, 0b10, 0b00) \
    SC(99, sysinfo, 1, 0b1, 0b0) \
    SC(100, times, 1, 0b1, 0b0) \
    SC(101, ptrace, 4, 0b1100, 0b0000) \
    SC(102, getuid, 0, 0b0, 0b0) \
    SC(103, syslog, 3, 0b010, 0b000) \
    SC(104, getgid, 0, 0b0, 0b0) \
    SC(105, setuid, 1, 0b0, 0b0) \
    SC(106, setgid, 1, 0b0, 0b0) \
    SC(107, geteuid, 0, 0b0, 0b0) \
    SC(108, getegid, 0, 0b0, 0b0) \
    SC(109, setpgid, 2, 0b00, 0b00) \
    SC(110, getppid, 0, 0b0, 0b0) \
    SC(111, getpgrp, 0, 0b0, 0b0) \
    SC(112, setsid, 0, 0b0, 0b0) \
    SC(113, setreuid, 2, 0b00, 0b00) \
    SC(114, setregid, 2, 0b00, 0b00) \
    SC(115, getgroups, 2, 0b10, 0b00) \
    SC(116, setgroups, 2, 0b10, 0b00) \
    SC(117, setresuid, 3, 0b000, 0b000) \
    SC(118, getresuid, 3, 0b111, 0b000) \
    SC(119, setresgid, 3, 0b000, 0b000) \
    SC(120, getresgid, 3, 0b111, 0b000) \
    SC(121, getpgid, 1, 0b0, 0b0) \
    SC(122, setfsuid, 1, 0b0, 0b0) \
    SC(123, setfsgid, 1, 0b0, 0b0) \
    SC(124, getsid, 1, 0b0, 0b0) \
    SC(125, capget, 2, 0b11, 0b00) \
    SC(126, capset, 2, 0b11, 0b00) \
    SC(127, rt_sigpending, 2, 0b01, 0b10) \
    SC(128, rt_sigtimedwait, 4, 0b0111, 0b1000) \
    SC(129, rt_sigqueueinfo, 3, 0b100, 0b000) \
    SC(130, rt_sigsuspend, 2, 0b01, 0b10) \
    SC(131, sigaltstack, 2, 0b11, 0b00) \
    SC(132, utime, 2, 0b11, 0b00) \
    SC(133, mknod, 3, 0b001, 0b000) \
    SC(134, uselib, 1, 0b1, 0b0) \
    SC(135, personality, 1, 0b0, 0b0) \
    SC(136, ustat, 2, 0b10, 0b00) \
    SC(137, statfs, 2, 0b11, 0b00) \
    SC(138, fstatfs, 2, 0b10, 0b00) \
    SC(139, sysfs, 3, 0b000, 0b000) \
    SC(140, getpriority, 2, 0b00, 0b00) \
    SC(141, setpriority, 3, 0b000, 0b000) \
    SC(142, sched_setparam, 2, 0b10, 0b00) \
    SC(143, sched_getparam, 2, 0b10, 0b00) \
    SC(144, sched_setscheduler, 3, 0b100, 0b000) \
    SC(145, sched_getscheduler, 1, 0b0, 0b0) \
    SC(146, sched_get_priority_max, 1, 0b0, 0b0) \
    SC(147, sched_get_priority_min, 1, 0b0, 0b0) \
    SC(148, sched_rr_get_interval, 2, 0b10, 0b00) \
    SC(149, mlock, 2, 0b01, 0b10) \
    SC(150, munlock, 2, 0b01, 0b10) \
    SC(151, mlockall, 1, 0b0, 0b0) \
    SC(152, munlockall, 0, 0b0, 0b0) \
    SC(153, vhangup, 0, 0b0, 0b0) \
    SC(154, modify_ldt, 3, 0b010, 0b100) \
    SC(155, pivot_root, 2, 0b11, 0b00) \
    SC(156, _sysctl, 1, 0b1, 0b0) \
    SC(157, prctl, 5, 0b00000, 0b11110) \
    SC(158, arch_prctl, 2, 0b00, 0b10) \
    SC(159, adjtimex, 1, 0b1, 0b0) \
    SC(160, setrlimit, 2, 0b10, 0b00) \
    SC(161, chroot, 1, 0b1, 0b0) \
    SC(162, sync, 0, 0b0, 0b0) \
    SC(163, acct, 1, 0b1, 0b0) \
    SC(164, settimeofday, 2, 0b11, 0b00) \
    SC(165, mount, 5, 0b10111, 0b01000) \
    SC(166, umount2, 2, 0b01, 0b00) \
    SC(167, swapon, 2, 0b01, 0b00) \
    SC(168, swapoff, 1, 0b1, 0b0) \
    SC(169, reboot, 4, 0b1000, 0b0000) \
    SC(170, sethostname, 2, 0b01, 0b00) \
    SC(171, setdomainname, 2, 0b01, 0b00) \
    SC(172, iopl, 1, 0b0, 0b0) \
    SC(173, ioperm, 3, 0b000, 0b011) \
    SC(174, create_module, 2, 0b01, 0b10) \
    SC(175, init_module, 3, 0b101, 0b010) \
    SC(176, delete_module, 2, 0b01, 0b00) \
    SC(177, get_kernel_syms, 1, 0b1, 0b0) \
    SC(178, query_module, 5, 0b10101, 0b01000) \
    SC(179, quotactl, 4, 0b1010, 0b0000) \
    SC(180, nfsservctl, 3, 0b110, 0b000) \
    SC(181, getpmsg, 5, 0b00000, 0b00000) \
    SC(182, putpmsg, 5, 0b00000, 0b00000) \
    SC(183, afs_syscall, 5, 0b00000, 0b00000) \
    SC(184, tuxcall, 3, 0b000, 0b000) \
    SC(185, security, 3, 0b000, 0b000) \
    SC(186, gettid, 0, 0b0, 0b0) \
    SC(187, readahead, 3, 0b000, 0b110) \
    SC(188, setxattr, 5, 0b00111, 0b01000) \
    SC(189, lsetxattr, 5, 0b00111, 0b01000) \
    SC(190, fsetxattr, 5, 0b00110, 0b01000) \
    SC(191, getxattr, 4, 0b0111, 0b1000) \
    SC(192, lgetxattr, 4, 0b0111, 0b1000) \
    SC(193, fgetxattr, 4, 0b0110, 0b1000) \
    SC(194, listxattr, 3, 0b011, 0b100) \
    SC(195, llistxattr, 3, 0b011, 0b100) \
    SC(196, flistxattr, 3, 0b010, 0b100) \
    SC(197, removexattr, 2, 0b11, 0b00) \
    SC(198, lremovexattr, 2, 0b11, 0b00) \
    SC(199, fremovexattr, 2, 0b10, 0b00) \
    SC(200, tkill, 2, 0b00, 0b00) \
    SC(201, time, 1, 0b1, 0b0) \
    SC(202, futex, 6, 0b011001, 0b000000) \
    SC(203, sched_setaffinity, 3, 0b100, 0b000) \
    SC(204, sched_getaffinity, 3, 0b100, 0b000) \
    SC(205, set_thread_area, 1, 0b1, 0b0) \
    SC(206, io_setup, 2, 0b10, 0b00) \
    SC(207, io_destroy, 1, 0b0, 0b1) \
    SC(208, io_getevents, 5, 0b11000, 0b00001) \
    SC(209, io_submit, 3, 0b100, 0b011) \
    SC(210, io_cancel, 3, 0b110, 0b001) \
    SC(211, get_thread_area, 1, 0b1, 0b0) \
    SC(212, lookup_dcookie, 3, 0b010, 0b101) \
    SC(213, epoll_create, 1, 0b0, 0b0) \
    SC(214, epoll_ctl_old, 4, 0b0000, 0b0000) \
    SC(215, epoll_wait_old, 3, 0b000, 0b000) \
    SC(216, remap_file_pages, 5, 0b00001, 0b01010) \
    SC(217, getdents64, 3, 0b010, 0b000) \
    SC(218, set_tid_address, 1, 0b1, 0b0) \
    SC(219, restart_syscall, 0, 0b0, 0b0) \
    SC(220, semtimedop, 4, 0b1010, 0b0100) \
    SC(221, fadvise64, 4, 0b0000, 0b0110) \
    SC(222, timer_create, 3, 0b110, 0b000) \
    SC(223, timer_settime, 4, 0b1100, 0b0000) \
    SC(224, timer_gettime, 2, 0b10, 0b00) \
    SC(225, timer_getoverrun, 1, 0b0, 0b0) \
    SC(226, timer_delete, 1, 0b0, 0b0) \
    SC(227, clock_settime, 2, 0b10, 0b00) \
    SC(228, clock_gettime, 2, 0b10, 0b00) \
    SC(229, clock_getres, 2, 0b10, 0b00) \
    SC(230, clock_nanosleep, 4, 0b1100, 0b0000) \
    SC(231, exit_group, 1, 0b0, 0b0) \
    SC(232, epoll_wait, 4, 0b0010, 0b0000) \
    SC(233, epoll_ctl, 4, 0b1000, 0b0000) \
    SC(234, tgkill, 3, 0b000, 0b000) \
    SC(235, utimes, 2, 0b11, 0b00) \
    SC(236, vserver, 5, 0b00000, 0b00000) \
    SC(237, mbind, 6, 0b001001, 0b010010) \
    SC(238, set_mempolicy, 3, 0b010, 0b100) \
    SC(239, get_mempolicy, 5, 0b01011, 0b00100) \
    SC(240, mq_open, 4, 0b1001, 0b0000) \
    SC(241, mq_unlink, 1, 0b1, 0b0) \
    SC(242, mq_timedsend, 5, 0b10010, 0b00100) \
    SC(243, mq_timedreceive, 5, 0b11010, 0b00100) \
    SC(244, mq_notify, 2, 0b10, 0b00) \
    SC(245, mq_getsetattr, 3, 0b110, 0b000) \
    SC(246, kexec_load, 4, 0b0100, 0b1011) \
    SC(247, waitid, 5, 0b10100, 0b00000) \
    SC(248, add_key, 5, 0b00111, 0b01000) \
    SC(249, request_key, 4, 0b0111, 0b0000) \
    SC(250, keyctl, 5, 0b00000, 0b11110) \
    SC(251, ioprio_set, 3, 0b000, 0b000) \
    SC(252, ioprio_get, 2, 0b00, 0b00) \
    SC(253, inotify_init, 0, 0b0, 0b0) \
    SC(254, inotify_add_watch, 3, 0b010, 0b000) \
    SC(255, inotify_rm_watch, 2, 0b00, 0b00) \
    SC(256, migrate_pages, 4, 0b1100, 0b0010) \
    SC(257, openat, 4, 0b0010, 0b0000) \
    SC(258, mkdirat, 3, 0b010, 0b000) \
    SC(259, mknodat, 4, 0b0010, 0b0000) \
    SC(260, fchownat, 5, 0b00010, 0b00000) \
    SC(261, futimesat, 3, 0b110, 0b000) \
    SC(262, newfstatat, 4, 0b0110, 0b0000) \
    SC(263, unlinkat, 3, 0b010, 0b000) \
    SC(264, renameat, 4, 0b1010, 0b0000) \
    SC(265, linkat, 5, 0b01010, 0b00000) \
    SC(266, symlinkat, 3, 0b101, 0b000) \
    SC(267, readlinkat, 4, 0b0110, 0b1000) \
    SC(268, fchmodat, 3, 0b010, 0b000) \
    SC(269, faccessat, 3, 0b010, 0b000) \
    SC(270, pselect6, 6, 0b111110, 0b000000) \
    SC(271, ppoll, 5, 0b01101, 0b10010) \
    SC(272, unshare, 1, 0b0, 0b0) \
    SC(273, set_robust_list, 2, 0b01, 0b10) \
    SC(274, get_robust_list, 3, 0b110, 0b000) \
    SC(275, splice, 6, 0b001010, 0b010000) \
    SC(276, tee, 4, 0b0000, 0b0100) \
    SC(277, sync_file_range, 4, 0b0000, 0b0110) \
    SC(278, vmsplice, 4, 0b0010, 0b0100) \
    SC(279, move_pages, 6, 0b011100, 0b000010) \
    SC(280, utimensat, 4, 0b0110, 0b0000) \
    SC(281, epoll_pwait, 6, 0b010010, 0b100000) \
    SC(282, signalfd, 3, 0b010, 0b100) \
    SC(283, timerfd_create, 2, 0b00, 0b00) \
    SC(284, eventfd, 1, 0b0, 0b0) \
    SC(285, fallocate, 4, 0b0000, 0b1100) \
    SC(286, timerfd_settime, 4, 0b1100, 0b0000) \
    SC(287, timerfd_gettime, 2, 0b10, 0b00) \
    SC(288, accept4, 4, 0b0110, 0b0000) \
    SC(289, signalfd4, 4, 0b0010, 0b0100) \
    SC(290, eventfd2, 2, 0b00, 0b00) \
    SC(291, epoll_create1, 1, 0b0, 0b0) \
    SC(292, dup3, 3, 0b000, 0b000) \
    SC(293, pipe2, 2, 0b01, 0b00) \
    SC(294, inotify_init1, 1, 0b0, 0b0) \
    SC(295, preadv, 5, 0b00010, 0b11000) \
    SC(296, pwritev, 5, 0b00010, 0b11000) \
    SC(297, rt_tgsigqueueinfo, 4, 0b1000, 0b0000) \
    SC(298, perf_event_open, 5, 0b00001, 0b10000) \
    SC(299, recvmmsg, 5, 0b10010, 0b00000) \
    SC(300, fanotify_init, 2, 0b00, 0b00) \
    SC(301, fanotify_mark, 5, 0b10000, 0b00100) \
    SC(302, prlimit64, 4, 0b1100, 0b0000) \
    SC(303, name_to_handle_at, 5, 0b01110, 0b00000) \
    SC(304, open_by_handle_at, 3, 0b010, 0b000) \
    SC(305, clock_adjtime, 2, 0b10, 0b00) \
    SC(306, syncfs, 1, 0b0, 0b0) \
    SC(307, sendmmsg, 4, 0b0010, 0b0000) \
    SC(308, setns, 2, 0b00, 0b00) \
    SC(309, getcpu, 3, 0b111, 0b000) \
    SC(310, process_vm_readv, 6, 0b001010, 0b010100) \
    SC(311, process_vm_writev, 6, 0b001010, 0b010100) \
    SC(312, kcmp, 5, 0b00000, 0b11000) \
    SC(313, finit_module, 3, 0b010, 0b000) \
    SC(314, sched_setattr, 3, 0b010, 0b000) \
    SC(315, sched_getattr, 4, 0b0010, 0b0000) \
    SC(316, renameat2, 5, 0b01010, 0b00000) \
    SC(317, seccomp, 3, 0b100, 0b000) \
    SC(318, getrandom, 3, 0b001, 0b010) \
    SC(319, memfd_create, 2, 0b01, 0b00) \
    SC(320, kexec_file_load, 5, 0b01000, 0b10100) \
    SC(321, bpf, 3, 0b010, 0b000) \
    SC(322, execveat, 5, 0b01110, 0b00000) \
    SC(323, userfaultfd, 1, 0b0, 0b0) \
    SC(324, membarrier, 2, 0b00, 0b00) \
    SC(325, mlock2, 3, 0b001, 0b010) \
    SC(326, copy_file_range, 6, 0b001010, 0b010000) \
    SC(327, preadv2, 6, 0b000010, 0b011000) \
    SC(328, pwritev2, 6, 0b000010, 0b011000) \
    SC(329, pkey_mprotect, 4, 0b0001, 0b0010) \
    SC(330, pkey_alloc, 2, 0b00, 0b11) \
    SC(331, pkey_free, 1, 0b0, 0b0) \
    SC(332, statx, 5, 0b10010, 0b00000) \
    SC(333, io_pgetevents, 6, 0b111000, 0b000001) \
    SC(334, rseq, 4, 0b0001, 0b0010) \
    SC(424, pidfd_send_signal, 4, 0b0100, 0b0000) \
    SC(425, io_uring_setup, 2, 0b10, 0b00) \
    SC(426, io_uring_enter, 6, 0b010000, 0b100000) \
    SC(427, io_uring_register, 4, 0b0100, 0b0000) \
    SC(428, open_tree, 3, 0b010, 0b000) \
    SC(429, move_mount, 5, 0b01010, 0b00000) \
    SC(430, fsopen, 2, 0b01, 0b00) \
    SC(431, fsconfig, 5, 0b01100, 0b00000) \
    SC(432, fsmount, 3, 0b000, 0b000) \
    SC(433, fspick, 3, 0b010, 0b000) \
    SC(434, pidfd_open, 2, 0b00, 0b00) \
    SC(435, clone3, 2, 0b01, 0b10)

std::vector<SyscallDesc>
buildTable()
{
    std::vector<SyscallDesc> table;
#define SC(id, nm, na, pm, wm) \
    table.push_back(SyscallDesc{id, #nm, na, pm, wm});
    SYSCALL_LIST(SC)
#undef SC
    return table;
}

const std::unordered_map<uint16_t, size_t> &
idIndex()
{
    static const std::unordered_map<uint16_t, size_t> index = [] {
        std::unordered_map<uint16_t, size_t> m;
        const auto &table = syscallTable();
        for (size_t i = 0; i < table.size(); ++i)
            m.emplace(table[i].id, i);
        return m;
    }();
    return index;
}

const std::unordered_map<std::string, size_t> &
nameIndex()
{
    static const std::unordered_map<std::string, size_t> index = [] {
        std::unordered_map<std::string, size_t> m;
        const auto &table = syscallTable();
        for (size_t i = 0; i < table.size(); ++i)
            m.emplace(table[i].name, i);
        return m;
    }();
    return index;
}

} // namespace

const std::vector<SyscallDesc> &
syscallTable()
{
    static const std::vector<SyscallDesc> table = buildTable();
    return table;
}

const SyscallDesc *
syscallById(uint16_t id)
{
    const auto &index = idIndex();
    auto it = index.find(id);
    return it == index.end() ? nullptr : &syscallTable()[it->second];
}

const SyscallDesc *
syscallByName(const std::string &name)
{
    const auto &index = nameIndex();
    auto it = index.find(name);
    return it == index.end() ? nullptr : &syscallTable()[it->second];
}

uint16_t
syscallIdBound()
{
    return static_cast<uint16_t>(syscallTable().back().id + 1);
}

} // namespace draco::os
