/**
 * @file
 * OS-programmable argument-register mapping (§VIII).
 *
 * Draco's hardware must know which general-purpose register carries the
 * transition ID and which carry its arguments. Hard-wiring the Linux
 * x86-64 syscall convention (rax; rdi, rsi, rdx, r10, r8, r9) would tie
 * the design to one kernel, so the paper proposes an OS-programmable
 * table mapping argument numbers to registers. That also generalizes
 * Draco to other privilege transitions: hypercalls, gVisor-style
 * user-level guardians, and sandboxed library calls all pass an ID plus
 * arguments in registers of *some* convention.
 */

#ifndef DRACO_OS_REGMAP_HH
#define DRACO_OS_REGMAP_HH

#include <array>
#include <cstdint>
#include <string>

#include "os/seccomp_abi.hh"

namespace draco::os {

/** x86-64 general-purpose register identifiers. */
enum class Reg : uint8_t {
    Rax = 0,
    Rbx,
    Rcx,
    Rdx,
    Rsi,
    Rdi,
    Rbp,
    Rsp,
    R8,
    R9,
    R10,
    R11,
    R12,
    R13,
    R14,
    R15,
};

/** Number of modeled general-purpose registers. */
inline constexpr unsigned kGprCount = 16;

/** @return The conventional name of @p reg ("rax", "r10", ...). */
const char *regName(Reg reg);

/** Architectural register file snapshot at a privilege transition. */
struct RegisterFile {
    std::array<uint64_t, kGprCount> gpr{};
    uint64_t pc = 0;

    uint64_t &operator[](Reg reg)
    {
        return gpr[static_cast<size_t>(reg)];
    }

    uint64_t operator[](Reg reg) const
    {
        return gpr[static_cast<size_t>(reg)];
    }
};

/**
 * The programmable mapping: which register holds the transition ID and
 * which hold arguments 0..5.
 */
class ArgRegisterMap
{
  public:
    /**
     * @param name Diagnostic name of the convention.
     * @param id_reg Register carrying the transition ID.
     * @param arg_regs Registers carrying arguments 0..5, in order.
     */
    ArgRegisterMap(std::string name, Reg id_reg,
                   std::array<Reg, kMaxSyscallArgs> arg_regs);

    /** The Linux x86-64 syscall convention (§II-A). */
    static const ArgRegisterMap &linuxSyscall();

    /** The Xen-style x86-64 hypercall convention. */
    static const ArgRegisterMap &xenHypercall();

    /** @return Convention name. */
    const std::string &name() const { return _name; }

    /** @return Register carrying the transition ID. */
    Reg idReg() const { return _idReg; }

    /** @return Register carrying argument @p i. */
    Reg argReg(unsigned i) const;

    /**
     * Decode a transition from a register-file snapshot into the
     * request format the checking stack consumes.
     */
    SyscallRequest extract(const RegisterFile &regs) const;

    /**
     * Encode a request back into a register file (the inverse, used by
     * trace tooling and tests).
     */
    RegisterFile materialize(const SyscallRequest &req) const;

  private:
    std::string _name;
    Reg _idReg;
    std::array<Reg, kMaxSyscallArgs> _argRegs;
};

} // namespace draco::os

#endif // DRACO_OS_REGMAP_HH
