/**
 * @file
 * Timing parameters of the kernel system-call path.
 *
 * The paper evaluates two software stacks: Ubuntu 18.04 / Linux 5.3 with
 * the BPF JIT effective and CPU vulnerability mitigations disabled
 * (§IV-A, Figures 2 and 11), and CentOS 7.6 / Linux 3.10 with KPTI and
 * Spectre mitigations enabled and Seccomp not using the JIT (Appendix,
 * Figures 16 and 17). A KernelCosts preset captures each stack's costs;
 * the simulation harness prices the checking mechanisms from these
 * numbers. Values are calibrated so the *normalized* overheads track the
 * paper's reported shapes — absolute nanoseconds are commodity-server
 * scale, not a claim about the authors' exact Xeon.
 */

#ifndef DRACO_OS_KERNELCOSTS_HH
#define DRACO_OS_KERNELCOSTS_HH

namespace draco::os {

/** Nanosecond cost parameters for one kernel generation. */
struct KernelCosts {
    const char *name;          ///< Human-readable stack name.

    /** Kernel entry + exit + minimal handler work (the insecure path). */
    double syscallBaseNs;

    /** Fixed cost to invoke the Seccomp machinery on each syscall. */
    double seccompEntryNs;

    /** Cost per executed BPF filter instruction. */
    double bpfInsnNs;

    /** Software Draco: SPT indexed check (ID-only fast path). */
    double dracoSptLookupNs;

    /** Software Draco: fixed cost of one CRC-64 hash invocation. */
    double dracoHashFixedNs;

    /** Software Draco: incremental CRC cost per hashed argument byte. */
    double dracoHashPerByteNs;

    /** Software Draco: one cuckoo-way probe (load + compare). */
    double dracoVatProbeNs;

    /** Software Draco: VAT insertion after a successful filter run. */
    double dracoVatInsertNs;

    /** Direct cost of a context switch (scheduler experiments). */
    double ctxSwitchNs;
};

/**
 * @return Costs for the paper's primary stack: Ubuntu 18.04, Linux 5.3,
 *         BPF JIT effective, spec_store_bypass/spectre_v2/mds/pti/l1tf
 *         mitigations disabled.
 */
const KernelCosts &newKernelCosts();

/**
 * @return Costs for the appendix stack: CentOS 7.6.1810, Linux 3.10,
 *         KPTI and Spectre mitigations enabled, Seccomp filters running
 *         through the cBPF interpreter (the JIT is enabled but Seccomp
 *         does not use it on that kernel).
 */
const KernelCosts &oldKernelCosts();

} // namespace draco::os

#endif // DRACO_OS_KERNELCOSTS_HH
