/**
 * @file
 * The Linux seccomp ABI data structures.
 *
 * A seccomp BPF filter executes over a read-only `seccomp_data` block
 * describing the pending system call; the layout here matches
 * `include/uapi/linux/seccomp.h` so filters built by our FilterBuilder
 * address fields at the same offsets a real kernel filter would.
 */

#ifndef DRACO_OS_SECCOMP_ABI_HH
#define DRACO_OS_SECCOMP_ABI_HH

#include <array>
#include <cstdint>
#include <cstring>

#include "os/syscalls.hh"

namespace draco::os {

/** Audit architecture token for native x86-64 (AUDIT_ARCH_X86_64). */
inline constexpr uint32_t kAuditArchX86_64 = 0xC000003EU;

/**
 * The data block a seccomp filter inspects, per the Linux UAPI.
 */
struct SeccompData {
    uint32_t nr;                   ///< System call number.
    uint32_t arch;                 ///< AUDIT_ARCH_* token.
    uint64_t instruction_pointer;  ///< User PC of the syscall instruction.
    uint64_t args[kMaxSyscallArgs]; ///< Raw 64-bit argument registers.
};

static_assert(sizeof(SeccompData) == 64, "seccomp_data must be 64 bytes");

/** Byte offsets of seccomp_data fields, used when assembling filters. */
namespace sd_off {
inline constexpr uint32_t nr = 0;
inline constexpr uint32_t arch = 4;
inline constexpr uint32_t ip_lo = 8;
inline constexpr uint32_t ip_hi = 12;

/** @return Offset of the low 32 bits of argument @p i. */
constexpr uint32_t argLo(unsigned i) { return 16 + 8 * i; }

/** @return Offset of the high 32 bits of argument @p i. */
constexpr uint32_t argHi(unsigned i) { return 16 + 8 * i + 4; }
} // namespace sd_off

/** Seccomp filter return actions (SECCOMP_RET_*), highest priority first. */
enum class SeccompAction : uint32_t {
    KillProcess = 0x80000000U,
    KillThread = 0x00000000U,
    Trap = 0x00030000U,
    Errno = 0x00050000U,
    Trace = 0x7ff00000U,
    Log = 0x7ffc0000U,
    Allow = 0x7fff0000U,
};

/** Mask selecting the action part of a filter return value. */
inline constexpr uint32_t kSeccompRetActionMask = 0xffff0000U;

/** Mask selecting the SECCOMP_RET_DATA payload (e.g. an errno). */
inline constexpr uint32_t kSeccompRetDataMask = 0x0000ffffU;

/** @return The action component of a raw filter return value. */
inline SeccompAction
actionOf(uint32_t raw)
{
    // KILL_PROCESS uses bit 31 alone; everything else lives in the
    // upper half-word.
    if (raw == static_cast<uint32_t>(SeccompAction::KillProcess))
        return SeccompAction::KillProcess;
    return static_cast<SeccompAction>(raw & kSeccompRetActionMask);
}

/** @return The SECCOMP_RET_DATA payload of a raw filter return value. */
inline uint16_t
retDataOf(uint32_t raw)
{
    return static_cast<uint16_t>(raw & kSeccompRetDataMask);
}

/** @return true when @p action permits the system call to execute. */
inline bool
actionAllows(SeccompAction action)
{
    return action == SeccompAction::Allow || action == SeccompAction::Log;
}

/** @return true when the raw return value @p raw permits execution. */
inline bool
rawActionAllows(uint32_t raw)
{
    return actionAllows(actionOf(raw));
}

/**
 * A materialized system call request: what user space hands the kernel.
 */
struct SyscallRequest {
    uint64_t pc = 0;      ///< PC of the syscall instruction (STB key).
    uint16_t sid = 0;     ///< System call ID (rax).
    std::array<uint64_t, kMaxSyscallArgs> args{}; ///< rdi..r9.

    /** @return The seccomp_data view of this request. */
    SeccompData
    toSeccompData() const
    {
        SeccompData d{};
        d.nr = sid;
        d.arch = kAuditArchX86_64;
        d.instruction_pointer = pc;
        std::memcpy(d.args, args.data(), sizeof(d.args));
        return d;
    }
};

} // namespace draco::os

#endif // DRACO_OS_SECCOMP_ABI_HH
