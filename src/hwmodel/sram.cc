#include "hwmodel/sram.hh"

#include <cmath>

namespace draco::hwmodel {

namespace {

// Representative 22 nm constants.
constexpr double kCellAreaMm2PerBit = 1.08e-7; ///< 6T SRAM cell.
constexpr double kPeriphBase = 1.35;           ///< Decoder/drivers.
constexpr double kPeriphPerWay = 0.18;         ///< Mux + comparators.
constexpr double kTagCamFactor = 1.9;          ///< Tag match logic.

constexpr double kDecodePsPerLevel = 9.0;
constexpr double kWordlineBasePs = 55.0;
constexpr double kComparePsPerWay = 7.0;
constexpr double kBitlinePsPerKbit = 1.2;

constexpr double kEnergyPjPerReadBit = 0.012;
constexpr double kEnergyDecodePj = 0.35;

constexpr double kLeakMwPerKbit = 0.035;

constexpr double kNand2AreaMm2 = 3.2e-7;
constexpr double kXorDepthPs = 38.0;

} // namespace

SramCosts
estimateSram(const SramGeometry &geometry)
{
    SramCosts costs;
    double bits = static_cast<double>(geometry.totalBits());
    double tagFrac = geometry.tagBits + geometry.dataBits
        ? static_cast<double>(geometry.tagBits) /
            (geometry.tagBits + geometry.dataBits)
        : 0.0;

    double periph = kPeriphBase + kPeriphPerWay * (geometry.ways - 1) +
        kTagCamFactor * tagFrac;
    costs.areaMm2 = bits * kCellAreaMm2PerBit * periph;

    double sets = static_cast<double>(
        geometry.sets() ? geometry.sets() : 1);
    double readBits = static_cast<double>(
        geometry.ways * (geometry.tagBits + geometry.dataBits));
    costs.accessPs = kWordlineBasePs +
        kDecodePsPerLevel * std::log2(sets + 1) +
        kComparePsPerWay * geometry.ways +
        kBitlinePsPerKbit * bits / 1024.0;

    costs.readEnergyPj = kEnergyDecodePj + kEnergyPjPerReadBit * readBits;
    costs.leakageMw = kLeakMwPerKbit * bits / 1024.0;
    return costs;
}

SramCosts
estimateCrcDatapath(unsigned crcBits, unsigned parallelBytes)
{
    SramCosts costs;
    // Byte-parallel CRC unrolls the LFSR: each input byte adds a layer
    // of XOR trees over roughly half the taps of the polynomial.
    double gates = crcBits * (6.0 + 5.5 * parallelBytes);
    costs.areaMm2 = gates * kNand2AreaMm2;
    costs.accessPs = kXorDepthPs * (2.0 + std::log2(parallelBytes + 1)) *
        3.2;
    costs.readEnergyPj = gates * 2.1e-4;
    costs.leakageMw = gates * 1.85e-5;
    return costs;
}

} // namespace draco::hwmodel
