/**
 * @file
 * Analytic SRAM area/time/energy model at 22 nm.
 *
 * The paper evaluates Draco's hardware structures with CACTI 7 and the
 * CRC hash datapath with Synopsys DC (Table III). Neither tool is
 * available here, so this module provides (a) a physically-motivated
 * first-order model — monotone in bits, sets, and associativity — and
 * (b) per-structure calibration factors that pin the model to the
 * paper's published Table III numbers. Sizing sweeps (the SLB ablation)
 * use the calibrated model so *relative* scaling is meaningful; the
 * uncalibrated base estimates are reported alongside for transparency.
 */

#ifndef DRACO_HWMODEL_SRAM_HH
#define DRACO_HWMODEL_SRAM_HH

#include <cstdint>

namespace draco::hwmodel {

/** Geometry of one SRAM structure. */
struct SramGeometry {
    uint64_t entries = 0;  ///< Total entries across ways.
    unsigned ways = 1;     ///< Associativity.
    unsigned tagBits = 0;  ///< Tag bits per entry (0 = untagged).
    unsigned dataBits = 0; ///< Payload bits per entry.

    /** @return Total storage bits. */
    uint64_t totalBits() const
    {
        return entries * (tagBits + dataBits);
    }

    /** @return Sets (entries / ways). */
    uint64_t sets() const { return ways ? entries / ways : 0; }
};

/** Cost estimate for one structure. */
struct SramCosts {
    double areaMm2 = 0.0;
    double accessPs = 0.0;
    double readEnergyPj = 0.0;
    double leakageMw = 0.0;
};

/**
 * First-order 22 nm SRAM cost model.
 *
 * Area: 6T cell area per bit plus peripheral overhead growing with
 * associativity and tag comparators. Access time: decoder depth
 * (log2 sets) + wordline/bitline + way comparison. Energy: bitline +
 * sense amp per accessed bit plus decoder. Leakage: proportional to
 * bits. Coefficients are representative of 22 nm SRAM compilers.
 */
SramCosts estimateSram(const SramGeometry &geometry);

/**
 * First-order model of an N-bit-per-cycle CRC LFSR datapath (the
 * paper's hash units, implemented as linear-feedback shift registers).
 *
 * @param crcBits CRC register width (64 here).
 * @param parallelBytes Input bytes consumed per cycle.
 */
SramCosts estimateCrcDatapath(unsigned crcBits, unsigned parallelBytes);

} // namespace draco::hwmodel

#endif // DRACO_HWMODEL_SRAM_HH
