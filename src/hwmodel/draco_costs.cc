#include "hwmodel/draco_costs.hh"

#include <cmath>

#include "support/logging.hh"

namespace draco::hwmodel {

namespace {

// Table III of the paper, 22 nm.
constexpr SramCosts kPaperSpt = {0.0036, 105.41, 1.32, 1.39};
constexpr SramCosts kPaperStb = {0.0063, 131.61, 1.78, 2.63};
constexpr SramCosts kPaperSlb = {0.01549, 112.75, 2.69, 3.96};
constexpr SramCosts kPaperCrc = {0.0019, 964.0, 0.98, 0.106};

SramCosts
scaleCosts(const SramCosts &base, const SramCosts &paper)
{
    auto ratio = [](double p, double b) { return b > 0.0 ? p / b : 1.0; };
    return SramCosts{
        base.areaMm2 * ratio(paper.areaMm2, base.areaMm2),
        base.accessPs * ratio(paper.accessPs, base.accessPs),
        base.readEnergyPj * ratio(paper.readEnergyPj, base.readEnergyPj),
        base.leakageMw * ratio(paper.leakageMw, base.leakageMw),
    };
}

/** Calibration factors for the SLB (paper / base), computed once. */
struct Calibration {
    double area, access, energy, leak;
};

Calibration
slbCalibration()
{
    SramCosts base = estimateSlbAggregate(slbGeometries());
    return Calibration{
        kPaperSlb.areaMm2 / base.areaMm2,
        kPaperSlb.accessPs / base.accessPs,
        kPaperSlb.readEnergyPj / base.readEnergyPj,
        kPaperSlb.leakageMw / base.leakageMw,
    };
}

} // namespace

SramGeometry
sptGeometry()
{
    // Valid bit + 48-bit VAT base (virtual address) + 48-bit Argument
    // Bitmask; direct mapped so no tag.
    return SramGeometry{384, 1, 0, 97};
}

SramGeometry
stbGeometry()
{
    // 48-bit PC tag; valid + 9-bit SID + 16-bit hash payload.
    return SramGeometry{256, 2, 48, 26};
}

std::vector<SramGeometry>
slbGeometries()
{
    // Tag: 9-bit SID + 16-bit hash; data: valid + argc × 64-bit args.
    std::vector<SramGeometry> tables;
    const unsigned entries[6] = {32, 64, 64, 32, 32, 16};
    for (unsigned argc = 1; argc <= 6; ++argc) {
        tables.push_back(SramGeometry{entries[argc - 1], 4, 25,
                                      1 + 64 * argc});
    }
    // Temporary buffer: 8 entries of the widest format.
    tables.push_back(SramGeometry{8, 4, 25, 1 + 64 * 6});
    return tables;
}

SramCosts
estimateSlbAggregate(const std::vector<SramGeometry> &subtables)
{
    if (subtables.empty())
        fatal("estimateSlbAggregate: no subtables");
    SramCosts total;
    SramCosts largest;
    uint64_t largestBits = 0;
    for (const auto &geom : subtables) {
        SramCosts c = estimateSram(geom);
        total.areaMm2 += c.areaMm2;
        total.leakageMw += c.leakageMw;
        if (geom.totalBits() > largestBits) {
            largestBits = geom.totalBits();
            largest = c;
        }
    }
    total.accessPs = largest.accessPs;
    total.readEnergyPj = largest.readEnergyPj;
    return total;
}

std::vector<StructureReport>
dracoTable3()
{
    std::vector<StructureReport> rows;

    SramCosts sptBase = estimateSram(sptGeometry());
    rows.push_back({"SPT", sptBase, kPaperSpt,
                    scaleCosts(sptBase, kPaperSpt)});

    SramCosts stbBase = estimateSram(stbGeometry());
    rows.push_back({"STB", stbBase, kPaperStb,
                    scaleCosts(stbBase, kPaperStb)});

    SramCosts slbBase = estimateSlbAggregate(slbGeometries());
    rows.push_back({"SLB", slbBase, kPaperSlb,
                    scaleCosts(slbBase, kPaperSlb)});

    // 64-bit CRC consuming up to 6 bytes per cycle (the widest checked
    // argument fraction per cycle in the paper's 3-cycle budget).
    SramCosts crcBase = estimateCrcDatapath(64, 6);
    rows.push_back({"CRC Hash", crcBase, kPaperCrc,
                    scaleCosts(crcBase, kPaperCrc)});

    return rows;
}

SramCosts
scaledSlbCost(double scale)
{
    if (scale < 0.25)
        fatal("scaledSlbCost: scale %.2f too small", scale);
    std::vector<SramGeometry> tables = slbGeometries();
    for (auto &geom : tables) {
        uint64_t entries = static_cast<uint64_t>(
            std::llround(geom.entries * scale));
        // Keep associativity feasible.
        entries = std::max<uint64_t>(entries, geom.ways);
        entries = (entries / geom.ways) * geom.ways;
        geom.entries = entries;
    }
    SramCosts base = estimateSlbAggregate(tables);
    Calibration cal = slbCalibration();
    return SramCosts{
        base.areaMm2 * cal.area,
        base.accessPs * cal.access,
        base.readEnergyPj * cal.energy,
        base.leakageMw * cal.leak,
    };
}

unsigned
cyclesFor(double ps, double ghz)
{
    double cyclePs = 1000.0 / ghz;
    return static_cast<unsigned>(std::ceil(ps / cyclePs));
}

} // namespace draco::hwmodel
