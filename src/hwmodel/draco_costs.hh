/**
 * @file
 * Cost accounting for Draco's hardware structures (Table III).
 *
 * Combines the analytic SRAM/CRC models with the paper's published
 * CACTI/Synopsys anchors: each structure carries the uncalibrated model
 * estimate, the paper's numbers, and the calibrated result (model ×
 * per-structure factor, which by construction matches the anchor).
 * The SLB sizing sweep scales geometry through the calibrated model.
 */

#ifndef DRACO_HWMODEL_DRACO_COSTS_HH
#define DRACO_HWMODEL_DRACO_COSTS_HH

#include <array>
#include <string>
#include <vector>

#include "hwmodel/sram.hh"

namespace draco::hwmodel {

/** One row of Table III, with model transparency. */
struct StructureReport {
    std::string name;
    SramCosts base;       ///< Uncalibrated analytic estimate.
    SramCosts paper;      ///< Table III (CACTI 7 / Synopsys DC, 22 nm).
    SramCosts calibrated; ///< base × calibration == paper.
};

/** @return SPT geometry: 384 × 1-way, 97-bit entries. */
SramGeometry sptGeometry();

/** @return STB geometry: 256 × 2-way, 48-bit tag + 26-bit data. */
SramGeometry stbGeometry();

/**
 * @return The six SLB subtable geometries (1..6 args) plus the
 *         8-entry temporary buffer, in that order.
 */
std::vector<SramGeometry> slbGeometries();

/**
 * Aggregate SLB cost: area and leakage summed over subtables; access
 * time and read energy of the largest (3-argument) subtable, matching
 * the paper's reporting convention.
 */
SramCosts estimateSlbAggregate(const std::vector<SramGeometry> &subtables);

/** @return All four Table III rows (SPT, STB, SLB, CRC hash). */
std::vector<StructureReport> dracoTable3();

/**
 * Calibrated SLB cost with every subtable's entry count scaled by
 * @p scale (≥ 0.25; associativity and widths fixed) — the sizing sweep.
 */
SramCosts scaledSlbCost(double scale);

/**
 * Number of cycles the engine should charge for a structure access or
 * hash given an access time in ps and a clock in GHz (ceiling).
 */
unsigned cyclesFor(double ps, double ghz);

} // namespace draco::hwmodel

#endif // DRACO_HWMODEL_DRACO_COSTS_HH
