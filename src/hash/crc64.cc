#include "hash/crc64.hh"

#include <bit>
#include <cstring>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__)) && \
    !defined(DRACO_FORCE_PORTABLE_CRC)
#define DRACO_CRC64_CLMUL 1
#include <immintrin.h>
#endif

namespace draco {

namespace {

uint64_t
loadBe64(const uint8_t *p)
{
    uint64_t v;
    std::memcpy(&v, p, 8);
    if constexpr (std::endian::native == std::endian::little) {
#if defined(__GNUC__) || defined(__clang__)
        return __builtin_bswap64(v);
#else
        uint64_t r = 0;
        for (int i = 0; i < 8; ++i)
            r = (r << 8) | ((v >> (8 * i)) & 0xff);
        return r;
#endif
    }
    return v;
}

/** @return r·x mod P for a degree-<64 residue r. */
uint64_t
mulXmod(uint64_t r, uint64_t poly)
{
    return (r << 1) ^ (r >> 63 ? poly : 0);
}

} // namespace

Crc64::Crc64(uint64_t poly)
    : _poly(poly)
{
    for (uint32_t i = 0; i < 256; ++i) {
        uint64_t crc = static_cast<uint64_t>(i) << 56;
        for (int bit = 0; bit < 8; ++bit)
            crc = mulXmod(crc, poly);
        _slice[0][i] = crc;
    }
    // _slice[n][b] = CRC of byte b followed by n zero bytes, so an
    // 8-byte step can consume each byte through its own table and XOR
    // the partial remainders.
    for (int n = 1; n < 8; ++n) {
        for (uint32_t i = 0; i < 256; ++i) {
            uint64_t prev = _slice[n - 1][i];
            _slice[n][i] = (prev << 8) ^ _slice[0][(prev >> 56) & 0xff];
        }
    }
    // Folding constants: x^64 mod P is the polynomial's low 64 bits;
    // 64 more modular doublings give x^128, another 64 give x^192.
    uint64_t r = poly;
    for (int i = 0; i < 64; ++i)
        r = mulXmod(r, poly);
    _k128 = r;
    for (int i = 0; i < 64; ++i)
        r = mulXmod(r, poly);
    _k192 = r;
}

uint64_t
Crc64::computeTable(const void *data, size_t len, uint64_t init) const
{
    const auto *p = static_cast<const uint8_t *>(data);
    uint64_t crc = init;
    for (size_t i = 0; i < len; ++i)
        crc = (crc << 8) ^ _slice[0][((crc >> 56) ^ p[i]) & 0xff];
    return crc;
}

uint64_t
Crc64::computeSlice8(const void *data, size_t len, uint64_t init) const
{
    const auto *p = static_cast<const uint8_t *>(data);
    uint64_t crc = init;
    while (len >= 8) {
        uint64_t x = crc ^ loadBe64(p);
        crc = _slice[7][x >> 56] ^ _slice[6][(x >> 48) & 0xff] ^
              _slice[5][(x >> 40) & 0xff] ^ _slice[4][(x >> 32) & 0xff] ^
              _slice[3][(x >> 24) & 0xff] ^ _slice[2][(x >> 16) & 0xff] ^
              _slice[1][(x >> 8) & 0xff] ^ _slice[0][x & 0xff];
        p += 8;
        len -= 8;
    }
    for (size_t i = 0; i < len; ++i)
        crc = (crc << 8) ^ _slice[0][((crc >> 56) ^ p[i]) & 0xff];
    return crc;
}

#if DRACO_CRC64_CLMUL

/**
 * PCLMULQDQ 16-byte folding. The 128-bit accumulator A holds a
 * polynomial congruent (mod P) to the message consumed so far shifted
 * by the bytes still pending; each step computes
 *   A' = hi(A)·(x^192 mod P) ⊕ lo(A)·(x^128 mod P) ⊕ next16
 * which is A·x^128 ⊕ next16 (mod P) — one 128-bit block consumed.
 * The caller's init register is XORed into the first 8 message bytes
 * (CRC(M, init) == CRC(M ⊕ init·x^{8n-64}, 0) for n >= 8). Requires
 * len >= 16.
 */
__attribute__((target("pclmul,ssse3"))) uint64_t
Crc64::foldClmul(const uint8_t *p, size_t len, uint64_t init) const
{
    // pshufb byte-reversal so lane order matches polynomial order
    // (first memory byte = most significant coefficient).
    const __m128i kSwap =
        _mm_set_epi8(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15);
    const __m128i kFold = _mm_set_epi64x(static_cast<int64_t>(_k192),
                                         static_cast<int64_t>(_k128));

    __m128i acc = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(p)), kSwap);
    acc = _mm_xor_si128(acc,
                        _mm_set_epi64x(static_cast<int64_t>(init), 0));
    p += 16;
    len -= 16;

    while (len >= 16) {
        __m128i next = _mm_shuffle_epi8(
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(p)), kSwap);
        __m128i hi = _mm_clmulepi64_si128(acc, kFold, 0x11); // hi(A)·k192
        __m128i lo = _mm_clmulepi64_si128(acc, kFold, 0x00); // lo(A)·k128
        acc = _mm_xor_si128(_mm_xor_si128(hi, lo), next);
        p += 16;
        len -= 16;
    }

    // Final reduction without Barrett constants: the table-engine CRC
    // of the accumulator's 16 big-endian bytes (init 0) is exactly
    // A·x^64 mod P, which is the running CRC register before the tail.
    alignas(16) uint8_t buf[16];
    _mm_store_si128(reinterpret_cast<__m128i *>(buf),
                    _mm_shuffle_epi8(acc, kSwap));
    uint64_t crc = computeTable(buf, 16, 0);
    return computeTable(p, len, crc);
}

#endif // DRACO_CRC64_CLMUL

bool
Crc64::clmulSupported()
{
#if DRACO_CRC64_CLMUL
    static const bool ok = __builtin_cpu_supports("pclmul") &&
                           __builtin_cpu_supports("ssse3");
    return ok;
#else
    return false;
#endif
}

uint64_t
Crc64::compute(const void *data, size_t len, uint64_t init) const
{
#if DRACO_CRC64_CLMUL
    // Folding wins once a few 16-byte blocks amortize the setup; the
    // small keys the VAT hashes stay on the slice-by-8 path.
    if (len >= 64 && clmulSupported())
        return foldClmul(static_cast<const uint8_t *>(data), len, init);
#endif
    return computeSlice8(data, len, init);
}

uint64_t
Crc64::computeClmul(const void *data, size_t len, uint64_t init) const
{
#if DRACO_CRC64_CLMUL
    if (len >= 16 && clmulSupported())
        return foldClmul(static_cast<const uint8_t *>(data), len, init);
#endif
    return computeTable(data, len, init);
}

uint64_t
Crc64::computeBitwise(uint64_t poly, const void *data, size_t len,
                      uint64_t init)
{
    const auto *p = static_cast<const uint8_t *>(data);
    uint64_t crc = init;
    for (size_t i = 0; i < len; ++i) {
        crc ^= static_cast<uint64_t>(p[i]) << 56;
        for (int bit = 0; bit < 8; ++bit)
            crc = mulXmod(crc, poly);
    }
    return crc;
}

const Crc64 &
crc64Ecma()
{
    static const Crc64 engine(kCrc64EcmaPoly);
    return engine;
}

const Crc64 &
crc64NotEcma()
{
    static const Crc64 engine(kCrc64NotEcmaPoly);
    return engine;
}

const char *
crc64EngineName()
{
    return Crc64::clmulSupported() ? "pclmul" : "slice8";
}

} // namespace draco
