#include "hash/crc64.hh"

namespace draco {

Crc64::Crc64(uint64_t poly)
    : _poly(poly)
{
    for (uint32_t i = 0; i < 256; ++i) {
        uint64_t crc = static_cast<uint64_t>(i) << 56;
        for (int bit = 0; bit < 8; ++bit) {
            if (crc & 0x8000000000000000ULL)
                crc = (crc << 1) ^ poly;
            else
                crc <<= 1;
        }
        _table[i] = crc;
    }
}

uint64_t
Crc64::compute(const void *data, size_t len, uint64_t init) const
{
    const auto *p = static_cast<const uint8_t *>(data);
    uint64_t crc = init;
    for (size_t i = 0; i < len; ++i)
        crc = (crc << 8) ^ _table[((crc >> 56) ^ p[i]) & 0xff];
    return crc;
}

uint64_t
Crc64::computeBitwise(uint64_t poly, const void *data, size_t len,
                      uint64_t init)
{
    const auto *p = static_cast<const uint8_t *>(data);
    uint64_t crc = init;
    for (size_t i = 0; i < len; ++i) {
        crc ^= static_cast<uint64_t>(p[i]) << 56;
        for (int bit = 0; bit < 8; ++bit) {
            if (crc & 0x8000000000000000ULL)
                crc = (crc << 1) ^ poly;
            else
                crc <<= 1;
        }
    }
    return crc;
}

const Crc64 &
crc64Ecma()
{
    static const Crc64 engine(kCrc64EcmaPoly);
    return engine;
}

const Crc64 &
crc64NotEcma()
{
    static const Crc64 engine(kCrc64NotEcmaPoly);
    return engine;
}

} // namespace draco
