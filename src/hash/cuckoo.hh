/**
 * @file
 * Generic 2-ary cuckoo hash set.
 *
 * The VAT (§V-B, §VII-A) stores each system call's validated argument sets
 * in a two-way cuckoo hash table so that a lookup costs exactly two probes
 * that can proceed in parallel, and collisions resolve gracefully via
 * displacement. On insert, if the displacement chain exceeds a threshold,
 * one entry is evicted to make room (the paper's "OS makes room by
 * evicting one entry").
 */

#ifndef DRACO_HASH_CUCKOO_HH
#define DRACO_HASH_CUCKOO_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "support/logging.hh"
#include "support/metrics.hh"

namespace draco {

/** Identifies which of the two hash functions located an entry. */
enum class CuckooWay : uint8_t {
    H1 = 0,
    H2 = 1,
};

/** Outcome of a cuckoo insertion. */
enum class CuckooInsert {
    Inserted,       ///< Key stored in an empty slot.
    AlreadyPresent, ///< Key was already in the table.
    EvictedVictim,  ///< Key stored, but another key was evicted for room.
};

/** Statistics describing a table's dynamic behaviour. */
struct CuckooStats {
    uint64_t lookups = 0;
    uint64_t hits = 0;
    uint64_t insertions = 0;
    uint64_t displacements = 0;
    uint64_t evictions = 0;
};

/**
 * Fixed-capacity two-way cuckoo hash set.
 *
 * @tparam Key Stored key type (must be equality comparable).
 *
 * Each way holds `buckets` slots; a key lives either at `h1(key) %
 * buckets` in way 0 or `h2(key) % buckets` in way 1. The two hash values
 * are supplied by caller-provided functions so the owner (the VAT) can use
 * CRC-64 ECMA / ¬ECMA over the masked argument bytes.
 */
template <typename Key>
class CuckooTable
{
  public:
    using HashFn = std::function<uint64_t(const Key &)>;

    /** Result of a successful lookup. */
    struct Found {
        CuckooWay way;   ///< Which hash function located the key.
        uint64_t hash;   ///< The raw hash value from that function.
        uint64_t index;  ///< Slot index within the way.
    };

    /**
     * @param buckets Number of slots per way (total capacity 2×buckets).
     * @param h1 First hash function.
     * @param h2 Second hash function.
     * @param max_displacements Displacement-chain bound before eviction.
     */
    CuckooTable(size_t buckets, HashFn h1, HashFn h2,
                unsigned max_displacements = 16)
        : _h1(std::move(h1)), _h2(std::move(h2)),
          _maxDisplacements(max_displacements)
    {
        if (buckets == 0)
            fatal("CuckooTable: bucket count must be > 0");
        _ways[0].assign(buckets, Slot{});
        _ways[1].assign(buckets, Slot{});
    }

    /**
     * Probe both ways for @p key.
     *
     * @return Location info on hit, std::nullopt on miss.
     */
    std::optional<Found>
    lookup(const Key &key) const
    {
        ++_stats.lookups;
        auto found = probe(key);
        if (found)
            ++_stats.hits;
        return found;
    }

    /** @return true if @p key is present. */
    bool contains(const Key &key) const { return lookup(key).has_value(); }

    /**
     * Insert @p key, displacing residents along the cuckoo chain as
     * needed. If the chain exceeds the displacement bound, the key at the
     * end of the chain is evicted.
     *
     * @param key Key to insert.
     * @param evicted Receives the evicted key when the result is
     *                EvictedVictim (may be nullptr if uninteresting).
     */
    CuckooInsert
    insert(const Key &key, Key *evicted = nullptr)
    {
        // Internal presence probe: does not touch the lookup/hit
        // counters, which account externally observed traffic only.
        if (probe(key))
            return CuckooInsert::AlreadyPresent;

        ++_stats.insertions;

        // Prefer a free slot in either way before displacing anyone.
        for (unsigned w = 0; w < 2; ++w) {
            uint64_t hv = w == 0 ? _h1(key) : _h2(key);
            Slot &slot = _ways[w][hv % buckets()];
            if (!slot.occupied) {
                slot.occupied = true;
                slot.key = key;
                ++_size;
                return CuckooInsert::Inserted;
            }
        }

        Key pending = key;
        unsigned way = 0;
        for (unsigned step = 0; step < _maxDisplacements; ++step) {
            uint64_t hv = way == 0 ? _h1(pending) : _h2(pending);
            Slot &slot = _ways[way][hv % buckets()];
            if (!slot.occupied) {
                slot.occupied = true;
                slot.key = pending;
                ++_size;
                return CuckooInsert::Inserted;
            }
            std::swap(slot.key, pending);
            ++_stats.displacements;
            way ^= 1;
        }
        // Chain bound exceeded: the pending key is the victim.
        ++_stats.evictions;
        if (evicted)
            *evicted = pending;
        return CuckooInsert::EvictedVictim;
    }

    /**
     * Remove @p key.
     *
     * @return true if the key was present and removed.
     */
    bool
    erase(const Key &key)
    {
        auto found = lookup(key);
        if (!found)
            return false;
        Slot &slot = _ways[static_cast<size_t>(found->way)][found->index];
        slot.occupied = false;
        slot.key = Key{};
        --_size;
        return true;
    }

    /** Remove every key. */
    void
    clear()
    {
        for (auto &way : _ways)
            for (auto &slot : way)
                slot = Slot{};
        _size = 0;
    }

    /**
     * Read one slot by location — the hardware preload path addresses
     * the table by (way, index) rather than by key.
     *
     * @return The occupant key, or nullptr when the slot is empty.
     */
    const Key *
    at(CuckooWay way, uint64_t index) const
    {
        const Slot &slot = _ways[static_cast<size_t>(way)][index % buckets()];
        return slot.occupied ? &slot.key : nullptr;
    }

    /** Invoke @p fn on every stored key. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const auto &way : _ways)
            for (const auto &slot : way)
                if (slot.occupied)
                    fn(slot.key);
    }

    /**
     * Invoke @p fn(way, index, key) on every occupied slot, way-major
     * then index order — the deterministic enumeration snapshot
     * encoders serialize.
     */
    template <typename Fn>
    void
    forEachSlot(Fn &&fn) const
    {
        for (unsigned w = 0; w < 2; ++w)
            for (size_t i = 0; i < _ways[w].size(); ++i)
                if (_ways[w][i].occupied)
                    fn(static_cast<CuckooWay>(w),
                       static_cast<uint64_t>(i), _ways[w][i].key);
    }

    /**
     * Place @p key at the exact slot (@p way, @p index) — snapshot
     * restore reproduces a table's layout verbatim rather than
     * replaying the insertion history, so post-restore displacement
     * and eviction behaviour is identical to never having snapshotted.
     *
     * @return false (table untouched) when @p index is out of range or
     *         the slot is already occupied.
     */
    bool
    placeAt(CuckooWay way, uint64_t index, const Key &key)
    {
        if (index >= buckets())
            return false;
        Slot &slot = _ways[static_cast<size_t>(way)][index];
        if (slot.occupied)
            return false;
        slot.occupied = true;
        slot.key = key;
        ++_size;
        return true;
    }

    /** Replace the behaviour counters (snapshot restore). */
    void restoreStats(const CuckooStats &stats) { _stats = stats; }

    /** @return Number of stored keys. */
    size_t size() const { return _size; }

    /** @return Slots per way. */
    size_t buckets() const { return _ways[0].size(); }

    /** @return Total slot capacity (2 × buckets). */
    size_t capacity() const { return 2 * buckets(); }

    /** @return Dynamic behaviour counters. */
    const CuckooStats &stats() const { return _stats; }

    /** Export counters and occupancy under @p prefix. */
    void
    exportMetrics(MetricRegistry &registry,
                  const std::string &prefix) const
    {
        auto name = [&](const char *metric) {
            return MetricRegistry::join(prefix, metric);
        };
        registry.setCounter(name("lookups"), _stats.lookups);
        registry.setCounter(name("hits"), _stats.hits);
        registry.setCounter(name("insertions"), _stats.insertions);
        registry.setCounter(name("displacements"),
                            _stats.displacements);
        registry.setCounter(name("evictions"), _stats.evictions);
        registry.setCounter(name("size"), _size);
        registry.setCounter(name("capacity"), capacity());
        registry.setGauge(name("hit_rate"),
                          _stats.lookups
                              ? static_cast<double>(_stats.hits) /
                                  static_cast<double>(_stats.lookups)
                              : 0.0);
    }

  private:
    struct Slot {
        bool occupied = false;
        Key key{};
    };

    /** Stat-free presence probe shared by lookup() and insert(). */
    std::optional<Found>
    probe(const Key &key) const
    {
        uint64_t hv1 = _h1(key);
        uint64_t idx1 = hv1 % buckets();
        const Slot &s1 = _ways[0][idx1];
        if (s1.occupied && s1.key == key)
            return Found{CuckooWay::H1, hv1, idx1};
        uint64_t hv2 = _h2(key);
        uint64_t idx2 = hv2 % buckets();
        const Slot &s2 = _ways[1][idx2];
        if (s2.occupied && s2.key == key)
            return Found{CuckooWay::H2, hv2, idx2};
        return std::nullopt;
    }

    HashFn _h1;
    HashFn _h2;
    unsigned _maxDisplacements;
    std::vector<Slot> _ways[2];
    size_t _size = 0;
    mutable CuckooStats _stats;
};

} // namespace draco

#endif // DRACO_HASH_CUCKOO_HH
