/**
 * @file
 * CRC-64 hash functions used by the VAT (Validated Argument Table).
 *
 * The paper (§VII-A) computes the two cuckoo hash indices with the
 * ECMA-182 CRC-64 polynomial and its bitwise complement ("¬ECMA"). In
 * hardware, each is a linear-feedback shift register (LFSR); in
 * software compute() dispatches between a slice-by-8 table engine and
 * a PCLMULQDQ carry-less-multiply folding engine (DESIGN.md §12), both
 * bit-identical to the byte-at-a-time reference computeTable().
 */

#ifndef DRACO_HASH_CRC64_HH
#define DRACO_HASH_CRC64_HH

#include <cstddef>
#include <cstdint>

namespace draco {

/** ECMA-182 CRC-64 generator polynomial (normal representation). */
inline constexpr uint64_t kCrc64EcmaPoly = 0x42F0E1EBA9EA3693ULL;

/** Bitwise complement of the ECMA polynomial — the paper's ¬ECMA. */
inline constexpr uint64_t kCrc64NotEcmaPoly = ~kCrc64EcmaPoly;

/**
 * CRC-64 engine over an arbitrary generator polynomial.
 *
 * The CRC is MSB-first (non-reflected) with caller-supplied initial
 * register and no output XOR — the LFSR the paper's hardware builds.
 */
class Crc64
{
  public:
    /** Build the lookup tables and fold constants for @p poly. */
    explicit Crc64(uint64_t poly);

    /**
     * Hash a byte buffer.
     *
     * Dispatches to the PCLMULQDQ folding engine on long buffers when
     * the CPU supports it (and the build was not forced portable),
     * otherwise to the slice-by-8 table engine. Every engine returns
     * the same digest bit for bit.
     *
     * @param data Input bytes.
     * @param len Number of bytes.
     * @param init Initial CRC register value.
     * @return The CRC-64 of the buffer.
     */
    uint64_t compute(const void *data, size_t len, uint64_t init = 0) const;

    /**
     * Byte-at-a-time table engine — the cross-engine reference the
     * fast paths are equivalence-tested against.
     */
    uint64_t computeTable(const void *data, size_t len,
                          uint64_t init = 0) const;

    /**
     * Carry-less-multiply folding engine, forced regardless of buffer
     * length (folds whenever len >= 16; shorter buffers and the tail
     * go through the table engine). Falls back to computeTable() when
     * the CPU lacks PCLMULQDQ — so it is always safe to call.
     */
    uint64_t computeClmul(const void *data, size_t len,
                          uint64_t init = 0) const;

    /**
     * Bit-at-a-time reference implementation (the LFSR the hardware
     * builds). Used in tests to validate the table-driven path.
     */
    static uint64_t computeBitwise(uint64_t poly, const void *data,
                                   size_t len, uint64_t init = 0);

    /**
     * @return true when the PCLMULQDQ engine is compiled in and the
     * CPU advertises pclmul+ssse3 (false under
     * DRACO_FORCE_PORTABLE_CRC builds).
     */
    static bool clmulSupported();

    /** @return The generator polynomial. */
    uint64_t poly() const { return _poly; }

  private:
    uint64_t computeSlice8(const void *data, size_t len, uint64_t init) const;
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__)) && \
    !defined(DRACO_FORCE_PORTABLE_CRC)
    uint64_t foldClmul(const uint8_t *p, size_t len, uint64_t init) const;
#endif

    uint64_t _poly;
    /** _slice[0] is the classic byte table; [n][b] = CRC of byte b
     * followed by n zero bytes. */
    uint64_t _slice[8][256];
    uint64_t _k128 = 0; ///< x^128 mod P, for 16-byte folding.
    uint64_t _k192 = 0; ///< x^192 mod P.
};

/** @return Singleton engine for the ECMA polynomial. */
const Crc64 &crc64Ecma();

/** @return Singleton engine for the ¬ECMA polynomial. */
const Crc64 &crc64NotEcma();

/** @return Name of the engine compute() prefers: "pclmul" or "slice8". */
const char *crc64EngineName();

/**
 * Non-linear index diffusion (the 64-bit Murmur3 finalizer).
 *
 * CRCs are GF(2)-linear: structured key sets (consecutive fds, strided
 * sizes — exactly what syscall arguments look like) produce clustered
 * table indices, and the ECMA/¬ECMA pair is additionally *jointly*
 * linearly dependent in its low bits. Passing each CRC through this
 * bijective finalizer before indexing restores the uniformity cuckoo
 * hashing needs; in hardware it is a handful of XOR/multiply stages
 * appended to the LFSR.
 */
constexpr uint64_t
mix64(uint64_t h)
{
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    h *= 0xc4ceb9fe1a85ec53ULL;
    h ^= h >> 33;
    return h;
}

} // namespace draco

#endif // DRACO_HASH_CRC64_HH
