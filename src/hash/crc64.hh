/**
 * @file
 * CRC-64 hash functions used by the VAT (Validated Argument Table).
 *
 * The paper (§VII-A) computes the two cuckoo hash indices with the
 * ECMA-182 CRC-64 polynomial and its bitwise complement ("¬ECMA"). In
 * hardware, each is a linear-feedback shift register (LFSR); in software
 * we use byte-at-a-time table lookup, which produces identical values.
 */

#ifndef DRACO_HASH_CRC64_HH
#define DRACO_HASH_CRC64_HH

#include <cstddef>
#include <cstdint>

namespace draco {

/** ECMA-182 CRC-64 generator polynomial (normal representation). */
inline constexpr uint64_t kCrc64EcmaPoly = 0x42F0E1EBA9EA3693ULL;

/** Bitwise complement of the ECMA polynomial — the paper's ¬ECMA. */
inline constexpr uint64_t kCrc64NotEcmaPoly = ~kCrc64EcmaPoly;

/**
 * Table-driven CRC-64 engine over an arbitrary generator polynomial.
 */
class Crc64
{
  public:
    /** Build the 256-entry lookup table for @p poly. */
    explicit Crc64(uint64_t poly);

    /**
     * Hash a byte buffer.
     *
     * @param data Input bytes.
     * @param len Number of bytes.
     * @param init Initial CRC register value.
     * @return The CRC-64 of the buffer.
     */
    uint64_t compute(const void *data, size_t len, uint64_t init = 0) const;

    /**
     * Bit-at-a-time reference implementation (the LFSR the hardware
     * builds). Used in tests to validate the table-driven path.
     */
    static uint64_t computeBitwise(uint64_t poly, const void *data,
                                   size_t len, uint64_t init = 0);

    /** @return The generator polynomial. */
    uint64_t poly() const { return _poly; }

  private:
    uint64_t _poly;
    uint64_t _table[256];
};

/** @return Singleton engine for the ECMA polynomial. */
const Crc64 &crc64Ecma();

/** @return Singleton engine for the ¬ECMA polynomial. */
const Crc64 &crc64NotEcma();

/**
 * Non-linear index diffusion (the 64-bit Murmur3 finalizer).
 *
 * CRCs are GF(2)-linear: structured key sets (consecutive fds, strided
 * sizes — exactly what syscall arguments look like) produce clustered
 * table indices, and the ECMA/¬ECMA pair is additionally *jointly*
 * linearly dependent in its low bits. Passing each CRC through this
 * bijective finalizer before indexing restores the uniformity cuckoo
 * hashing needs; in hardware it is a handful of XOR/multiply stages
 * appended to the LFSR.
 */
constexpr uint64_t
mix64(uint64_t h)
{
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    h *= 0xc4ceb9fe1a85ec53ULL;
    h ^= h >> 33;
    return h;
}

} // namespace draco

#endif // DRACO_HASH_CRC64_HH
