#include "serve/server.hh"

#include <cerrno>
#include <cstring>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "support/logging.hh"

namespace draco::serve {

namespace {

/** Fill @p addr with @p path; false when it does not fit sun_path. */
bool
makeAddress(const std::string &path, sockaddr_un &addr)
{
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path))
        return false;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return true;
}

} // namespace

// ---- SocketServer ----

SocketServer::SocketServer(CheckService &service, std::string socketPath)
    : _service(service), _socketPath(std::move(socketPath))
{
}

SocketServer::~SocketServer()
{
    stop();
}

bool
SocketServer::start()
{
    sockaddr_un addr;
    if (!makeAddress(_socketPath, addr)) {
        warn("dracod: socket path too long: %s", _socketPath.c_str());
        return false;
    }
    _listenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (_listenFd < 0) {
        warn("dracod: socket(): %s", std::strerror(errno));
        return false;
    }
    ::unlink(_socketPath.c_str());
    if (::bind(_listenFd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) < 0 ||
        ::listen(_listenFd, 16) < 0) {
        warn("dracod: bind/listen %s: %s", _socketPath.c_str(),
             std::strerror(errno));
        ::close(_listenFd);
        _listenFd = -1;
        return false;
    }
    _acceptThread = std::thread([this] { acceptLoop(); });
    return true;
}

void
SocketServer::acceptLoop()
{
    ScopedLogContext logContext("dracod/accept");
    for (;;) {
        int fd = ::accept(_listenFd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            if (!_stop.load())
                warn("dracod: accept(): %s", std::strerror(errno));
            break;
        }
        if (_stop.load()) {
            ::close(fd);
            break;
        }
        _accepted.fetch_add(1);
        auto conn = std::make_unique<Connection>();
        conn->fd = fd;
        Connection *c = conn.get();
        {
            std::lock_guard<std::mutex> lock(_connMutex);
            _connections.push_back(std::move(conn));
        }
        c->writer = std::thread([this, c] { writerLoop(c); });
        c->reader = std::thread([this, c] { readerLoop(c); });
    }
}

void
SocketServer::sendFrame(Connection *conn, std::vector<uint8_t> payload)
{
    {
        std::lock_guard<std::mutex> lock(conn->mutex);
        if (conn->closing)
            return;
        conn->outbox.push_back(std::move(payload));
    }
    conn->wake.notify_all();
}

void
SocketServer::writerLoop(Connection *conn)
{
    ScopedLogContext logContext("dracod/writer");
    for (;;) {
        std::vector<uint8_t> payload;
        {
            std::unique_lock<std::mutex> lock(conn->mutex);
            conn->wake.wait(lock, [&] {
                return !conn->outbox.empty() || conn->closing;
            });
            if (conn->outbox.empty())
                break; // closing and drained
            payload = std::move(conn->outbox.front());
            conn->outbox.pop_front();
        }
        if (!conn->writeFailed && !wire::writeFrame(conn->fd, payload))
            conn->writeFailed = true; // keep draining, drop frames
    }
}

bool
SocketServer::handleFrame(Connection *conn,
                          const std::vector<uint8_t> &payload)
{
    std::vector<uint8_t> reply;
    switch (wire::peekType(payload)) {
      case wire::MsgType::Hello: {
        wire::Hello msg;
        if (!wire::decode(payload, msg))
            return false;
        wire::HelloReply r;
        r.version = wire::kProtocolVersion;
        r.shards = _service.shards();
        wire::encode(reply, r);
        sendFrame(conn, std::move(reply));
        return true;
      }
      case wire::MsgType::CreateTenant: {
        wire::CreateTenant msg;
        if (!wire::decode(payload, msg))
            return false;
        wire::CreateTenantReply r;
        std::optional<seccomp::Profile> profile =
            builtinProfileByName(msg.profile);
        if (!profile) {
            r.error = "unknown profile: " + msg.profile;
        } else {
            TenantOptions opts;
            if (msg.filterCopies > 0)
                opts.filterCopies = msg.filterCopies;
            if (msg.maxInFlight > 0)
                opts.maxInFlight = msg.maxInFlight;
            r.tenantId =
                _service.createTenant(msg.name, *profile, opts);
            if (r.tenantId == kInvalidTenant)
                r.error = "tenant table full or service stopping";
        }
        wire::encode(reply, r);
        sendFrame(conn, std::move(reply));
        return true;
      }
      case wire::MsgType::CheckBatch: {
        // The reply is produced by the shard worker when the batch
        // completes, so the reader keeps decoding the next frame and a
        // connection can pipeline many batches.
        struct Pending {
            wire::CheckBatchReply reply;
            Batch batch;
        };
        auto ctx = std::make_shared<Pending>();
        wire::CheckBatch msg;
        if (!wire::decode(payload, msg))
            return false;
        ctx->reply.batchId = msg.batchId;
        ctx->reply.resps.resize(msg.reqs.size());
        if (msg.reqs.empty()) {
            wire::encode(reply, ctx->reply);
            sendFrame(conn, std::move(reply));
            return true;
        }
        conn->inflight.fetch_add(1);
        // The requests must outlive the submit; move them into the
        // context so the callback owns everything it needs.
        auto reqs = std::make_shared<std::vector<os::SyscallRequest>>(
            std::move(msg.reqs));
        TenantId tenantId = msg.tenantId;
        ctx->batch.onComplete([this, conn, ctx, reqs] {
            std::vector<uint8_t> buf;
            wire::encode(buf, ctx->reply);
            sendFrame(conn, std::move(buf));
            conn->inflight.fetch_sub(1);
            conn->wake.notify_all();
        });
        _service.submitBatch(tenantId, reqs->data(),
                             static_cast<uint32_t>(reqs->size()),
                             ctx->reply.resps.data(), ctx->batch);
        return true;
      }
      case wire::MsgType::TenantStatsReq: {
        wire::TenantStatsReq msg;
        if (!wire::decode(payload, msg))
            return false;
        wire::TenantStatsReply r;
        r.ok = _service.tenantStats(msg.tenantId, r.stats);
        wire::encode(reply, r);
        sendFrame(conn, std::move(reply));
        return true;
      }
      case wire::MsgType::EvictTenant: {
        wire::EvictTenant msg;
        if (!wire::decode(payload, msg))
            return false;
        wire::EvictTenantReply r;
        r.ok = _service.evictTenant(msg.tenantId);
        wire::encode(reply, r);
        sendFrame(conn, std::move(reply));
        return true;
      }
      case wire::MsgType::Shutdown: {
        wire::encodeShutdownReply(reply);
        sendFrame(conn, std::move(reply));
        requestStop();
        return false;
      }
      default:
        warn("dracod: unexpected frame type %u, closing connection",
             static_cast<unsigned>(wire::peekType(payload)));
        return false;
    }
}

void
SocketServer::readerLoop(Connection *conn)
{
    ScopedLogContext logContext("dracod/reader");
    std::vector<uint8_t> payload;
    while (wire::readFrame(conn->fd, payload)) {
        if (!handleFrame(conn, payload))
            break;
    }
}

void
SocketServer::requestStop()
{
    if (_stop.exchange(true))
        return;
    if (_listenFd >= 0)
        ::shutdown(_listenFd, SHUT_RDWR);
    _waitCv.notify_all();
}

void
SocketServer::wait()
{
    {
        std::unique_lock<std::mutex> lock(_waitMutex);
        _waitCv.wait(lock, [this] { return _stop.load(); });
    }
    stop();
}

void
SocketServer::stop()
{
    requestStop();
    if (_stopped.exchange(true))
        return;

    if (_acceptThread.joinable())
        _acceptThread.join();
    if (_listenFd >= 0) {
        ::close(_listenFd);
        _listenFd = -1;
    }

    std::lock_guard<std::mutex> lock(_connMutex);
    for (auto &conn : _connections) {
        // Unblock the reader; it stops decoding new frames.
        ::shutdown(conn->fd, SHUT_RD);
        if (conn->reader.joinable())
            conn->reader.join();
        // Batches still in the service must finish and enqueue their
        // replies before the writer is told to drain and exit.
        {
            std::unique_lock<std::mutex> connLock(conn->mutex);
            conn->wake.wait(connLock, [&] {
                return conn->inflight.load() == 0;
            });
            conn->closing = true;
        }
        conn->wake.notify_all();
        if (conn->writer.joinable())
            conn->writer.join();
        ::close(conn->fd);
    }
    _connections.clear();
    ::unlink(_socketPath.c_str());
}

// ---- SocketClient ----

std::unique_ptr<SocketClient>
SocketClient::connect(const std::string &socketPath)
{
    sockaddr_un addr;
    if (!makeAddress(socketPath, addr)) {
        warn("dracoload: socket path too long: %s", socketPath.c_str());
        return nullptr;
    }
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        warn("dracoload: socket(): %s", std::strerror(errno));
        return nullptr;
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        warn("dracoload: connect %s: %s", socketPath.c_str(),
             std::strerror(errno));
        ::close(fd);
        return nullptr;
    }

    auto client = std::unique_ptr<SocketClient>(new SocketClient(fd));
    std::vector<uint8_t> request;
    std::vector<uint8_t> reply;
    wire::encode(request, wire::Hello{});
    wire::HelloReply hello;
    if (!client->roundTrip(request, reply) ||
        !wire::decode(reply, hello) ||
        hello.version != wire::kProtocolVersion) {
        warn("dracoload: handshake with %s failed", socketPath.c_str());
        return nullptr;
    }
    client->_serverShards = hello.shards;
    return client;
}

SocketClient::~SocketClient()
{
    if (_fd >= 0)
        ::close(_fd);
}

bool
SocketClient::roundTrip(const std::vector<uint8_t> &request,
                        std::vector<uint8_t> &reply)
{
    return wire::writeFrame(_fd, request) && wire::readFrame(_fd, reply);
}

TenantId
SocketClient::createTenant(const std::string &name,
                           const std::string &profileName,
                           const TenantOptions &options)
{
    wire::CreateTenant msg;
    msg.name = name;
    msg.profile = profileName;
    msg.maxInFlight = options.maxInFlight;
    msg.filterCopies = static_cast<uint8_t>(options.filterCopies);
    std::vector<uint8_t> request;
    std::vector<uint8_t> reply;
    wire::encode(request, msg);
    wire::CreateTenantReply r;
    if (!roundTrip(request, reply) || !wire::decode(reply, r)) {
        warn("dracoload: CreateTenant transport failure");
        return kInvalidTenant;
    }
    if (r.tenantId == kInvalidTenant && !r.error.empty())
        warn("dracoload: CreateTenant '%s': %s", name.c_str(),
             r.error.c_str());
    return r.tenantId;
}

bool
SocketClient::checkBatch(TenantId id, const os::SyscallRequest *reqs,
                         uint32_t count, CheckResponse *resps)
{
    wire::CheckBatch msg;
    msg.batchId = _nextBatchId++;
    msg.tenantId = id;
    msg.reqs.assign(reqs, reqs + count);
    std::vector<uint8_t> request;
    std::vector<uint8_t> reply;
    wire::encode(request, msg);
    wire::CheckBatchReply r;
    if (!roundTrip(request, reply) || !wire::decode(reply, r) ||
        r.batchId != msg.batchId || r.resps.size() != count) {
        return false;
    }
    std::copy(r.resps.begin(), r.resps.end(), resps);
    return true;
}

bool
SocketClient::tenantStats(TenantId id, TenantStats &out)
{
    wire::TenantStatsReq msg;
    msg.tenantId = id;
    std::vector<uint8_t> request;
    std::vector<uint8_t> reply;
    wire::encode(request, msg);
    wire::TenantStatsReply r;
    if (!roundTrip(request, reply) || !wire::decode(reply, r) || !r.ok)
        return false;
    out = r.stats;
    return true;
}

bool
SocketClient::evictTenant(TenantId id)
{
    wire::EvictTenant msg;
    msg.tenantId = id;
    std::vector<uint8_t> request;
    std::vector<uint8_t> reply;
    wire::encode(request, msg);
    wire::EvictTenantReply r;
    return roundTrip(request, reply) && wire::decode(reply, r) && r.ok;
}

bool
SocketClient::shutdownServer()
{
    std::vector<uint8_t> request;
    std::vector<uint8_t> reply;
    wire::encodeShutdown(request);
    return roundTrip(request, reply) &&
           wire::peekType(reply) == wire::MsgType::ShutdownReply;
}

} // namespace draco::serve
