#include "serve/server.hh"

#include <cerrno>
#include <cstring>
#include <deque>

#include <sys/socket.h>
#include <unistd.h>

#include "obs/serveobs.hh"
#include "support/logging.hh"

namespace draco::serve {

namespace {

ServerOptions
unixOnly(std::string path)
{
    ServerOptions options;
    options.socketPath = std::move(path);
    return options;
}

} // namespace

/** One accepted connection; loop-thread-only after adoption. */
struct SocketServer::Conn {
    int fd = -1;
    ConnState state = ConnState::Open;

    wire::FrameParser parser;     ///< Incremental inbound frame decode.
    std::vector<uint8_t> outBuf;  ///< Staged framed output.
    size_t outPos = 0;            ///< Bytes of outBuf already written.

    /**
     * CheckBatch submissions whose reply has not been pumped from the
     * loop inbox yet. Only the owning loop thread reads or writes it,
     * and the conn cannot be reaped while it is non-zero — which is
     * exactly what keeps the Conn* inside queued replies valid.
     */
    uint32_t inflight = 0;

    uint32_t epollMask = 0;       ///< Currently registered interest.
    bool discardOutput = false;   ///< Write side dead; drop replies.
    bool pumpTouched = false;     ///< Dedup flag while pumping replies.

    /** Accepted on the metrics listener: speaks HTTP, not frames. */
    bool http = false;
    std::string httpBuf;          ///< Buffered HTTP request head.

    /**
     * Latency-pipeline state (only populated when the server owns an
     * obs::ServeObs). lastReadNs is the admission stamp: one clock
     * read per readInput() call, shared by every frame parsed out of
     * that read. The cumulative queued/sent byte counters pair with
     * marks to detect when a given reply's last byte hit the socket —
     * they keep counting across outBuf compaction, unlike outPos.
     */
    uint64_t lastReadNs = 0;
    uint64_t outQueuedBytes = 0;  ///< Bytes ever appended to outBuf.
    uint64_t outSentBytes = 0;    ///< Bytes ever accepted by send().

    /** A reply awaiting its flush stamp. */
    struct FlushMark {
        uint64_t target; ///< outQueuedBytes after this reply landed.
        obs::StageRecord rec;
    };
    std::deque<FlushMark> marks; ///< FIFO, targets ascending.
};

/** One event-loop thread and everything it owns. */
struct SocketServer::Loop {
    /** A completed batch's framed reply, bound for conn's outBuf. */
    struct Reply {
        Conn *conn;
        std::vector<uint8_t> frame;
        bool hasRec = false;
        obs::StageRecord rec; ///< Valid when hasRec.
    };

    support::Epoll epoll;
    support::EventFd wake;
    std::thread thread;
    size_t index = 0; ///< This loop's slot in the ServeObs hub.

    std::mutex mutex; ///< Guards inbox and pendingAdopt.
    std::vector<Reply> inbox; ///< Completions from shard workers.
    std::vector<std::unique_ptr<Conn>> pendingAdopt; ///< From accept.

    std::list<std::unique_ptr<Conn>> conns; ///< Loop-thread-only.
};

// ---- SocketServer ----

SocketServer::SocketServer(CheckService &service, ServerOptions options)
    : _service(service), _options(std::move(options))
{
    if (_options.eventThreads == 0)
        _options.eventThreads = 1;
}

SocketServer::SocketServer(CheckService &service, std::string socketPath)
    : SocketServer(service, unixOnly(std::move(socketPath)))
{
}

SocketServer::~SocketServer()
{
    stop();
}

bool
SocketServer::start()
{
    if (_options.socketPath.empty() && _options.tcpAddress.empty()) {
        warn("dracod: no listen endpoint configured");
        return false;
    }
    if (!_options.socketPath.empty()) {
        _unixListenFd = listenEndpoint(
            Endpoint::unix_(_options.socketPath), _options.backlog);
        if (_unixListenFd < 0)
            return false;
        support::setNonBlocking(_unixListenFd);
    }
    if (!_options.tcpAddress.empty()) {
        std::optional<Endpoint> ep =
            Endpoint::parseTcp(_options.tcpAddress);
        int fd = ep ? listenEndpoint(*ep, _options.backlog) : -1;
        if (fd < 0) {
            if (!ep)
                warn("dracod: bad TCP listen address: %s",
                     _options.tcpAddress.c_str());
            if (_unixListenFd >= 0) {
                ::close(_unixListenFd);
                _unixListenFd = -1;
                ::unlink(_options.socketPath.c_str());
            }
            return false;
        }
        _tcpListenFd = fd;
        support::setNonBlocking(_tcpListenFd);
        _tcpPort = tcpLocalPort(_tcpListenFd);
    }
    if (!_options.metricsAddress.empty()) {
        std::optional<Endpoint> ep =
            Endpoint::parseTcp(_options.metricsAddress);
        int fd = ep ? listenEndpoint(*ep, _options.backlog) : -1;
        if (fd < 0) {
            if (!ep)
                warn("dracod: bad metrics listen address: %s",
                     _options.metricsAddress.c_str());
            if (_unixListenFd >= 0) {
                ::close(_unixListenFd);
                _unixListenFd = -1;
                ::unlink(_options.socketPath.c_str());
            }
            if (_tcpListenFd >= 0) {
                ::close(_tcpListenFd);
                _tcpListenFd = -1;
            }
            return false;
        }
        _metricsListenFd = fd;
        support::setNonBlocking(_metricsListenFd);
        _metricsPort = tcpLocalPort(_metricsListenFd);

        obs::ServeObsOptions obsOptions;
        obsOptions.loops = _options.eventThreads;
        obsOptions.shards = _service.shards();
        obsOptions.slowUs = _options.slowUs;
        obsOptions.slowCapacity = _options.slowCapacity;
        _obs = std::make_unique<obs::ServeObs>(obsOptions);
    }

    for (unsigned i = 0; i < _options.eventThreads; ++i)
        _loops.push_back(std::make_unique<Loop>());
    // All listeners live in loop 0's epoll set; accepted connections
    // spread round-robin over the pool through adoption queues.
    if (_unixListenFd >= 0)
        _loops[0]->epoll.add(_unixListenFd, EPOLLIN, &_unixTag);
    if (_tcpListenFd >= 0)
        _loops[0]->epoll.add(_tcpListenFd, EPOLLIN, &_tcpTag);
    if (_metricsListenFd >= 0)
        _loops[0]->epoll.add(_metricsListenFd, EPOLLIN, &_metricsTag);
    for (size_t i = 0; i < _loops.size(); ++i) {
        Loop &loop = *_loops[i];
        loop.index = i;
        loop.epoll.add(loop.wake.fd(), EPOLLIN, &loop);
        loop.thread = std::thread([this, i] { loopMain(i); });
    }
    return true;
}

void
SocketServer::loopMain(size_t index)
{
    ScopedLogContext logContext("dracod/loop");
    Loop &loop = *_loops[index];
    std::vector<epoll_event> events;
    std::vector<uint8_t> chunk(64 * 1024);
    bool listenersLive = (index == 0);
    bool stopping = false;
    std::chrono::steady_clock::time_point stopSeen{};

    // Transition into the draining state once _stop becomes visible.
    // Called both before and after the epoll wait: the wake eventfd
    // coalesces, so a stop signal can be drained away by the same
    // iteration that was woken for an earlier reason — only a check on
    // both sides of the blocking point cannot miss it.
    auto observeStop = [&] {
        if (stopping || !_stop.load())
            return;
        stopping = true;
        stopSeen = std::chrono::steady_clock::now();
        if (listenersLive) {
            if (_unixListenFd >= 0)
                loop.epoll.del(_unixListenFd);
            if (_tcpListenFd >= 0)
                loop.epoll.del(_tcpListenFd);
            if (_metricsListenFd >= 0)
                loop.epoll.del(_metricsListenFd);
            listenersLive = false;
        }
        beginStopDrain(loop);
    };

    for (;;) {
        observeStop();
        // While stopping, poll with a timeout so the drain grace can
        // expire even if no fd ever becomes ready again.
        int n = loop.epoll.wait(events, stopping ? 50 : -1);
        observeStop();

        for (int i = 0; i < n; ++i) {
            void *cookie = events[i].data.ptr;
            uint32_t ev = events[i].events;
            if (cookie == &loop) {
                loop.wake.drain();
                continue;
            }
            if (cookie == &_unixTag || cookie == &_tcpTag ||
                cookie == &_metricsTag) {
                if (!stopping) {
                    if (cookie == &_metricsTag)
                        acceptReady(_metricsListenFd, true, true);
                    else
                        acceptReady(cookie == &_unixTag ? _unixListenFd
                                                        : _tcpListenFd,
                                    cookie == &_tcpTag);
                }
                continue;
            }
            // Conns are destroyed only in reapConnections(), after
            // this dispatch loop, so the cookie is always alive here.
            Conn *conn = static_cast<Conn *>(cookie);
            if (ev & EPOLLOUT)
                flushOutput(loop, conn);
            if (ev & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR)) {
                if (conn->state == ConnState::Open)
                    readInput(loop, conn, chunk);
                else if (ev & (EPOLLHUP | EPOLLERR))
                    // A draining peer that hung up can never take the
                    // replies it is owed; stop waiting on them.
                    beginDrain(loop, conn, true);
            }
        }

        adoptPending(loop, stopping);
        pumpReplies(loop);

        if (stopping &&
            std::chrono::steady_clock::now() - stopSeen >
                std::chrono::milliseconds(_options.drainGraceMs)) {
            for (auto &conn : loop.conns)
                if (conn->outPos < conn->outBuf.size())
                    beginDrain(loop, conn.get(), true);
        }

        reapConnections(loop);

        if (stopping && loop.conns.empty()) {
            std::lock_guard<std::mutex> lock(loop.mutex);
            if (loop.pendingAdopt.empty() && loop.inbox.empty())
                break;
        }
    }
}

void
SocketServer::acceptReady(int listenFd, bool tcp, bool http)
{
    for (;;) {
        int fd = ::accept4(listenFd, nullptr, nullptr,
                           SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            if (errno != EAGAIN && errno != EWOULDBLOCK)
                warn("dracod: accept(): %s", std::strerror(errno));
            break;
        }
        if (tcp)
            setNoDelay(fd);
        uint64_t seq = _accepted.fetch_add(1);
        _active.fetch_add(1);
        auto conn = std::make_unique<Conn>();
        conn->fd = fd;
        conn->http = http;
        Loop &target = *_loops[seq % _loops.size()];
        {
            std::lock_guard<std::mutex> lock(target.mutex);
            target.pendingAdopt.push_back(std::move(conn));
            target.wake.signal();
        }
    }
}

void
SocketServer::adoptPending(Loop &loop, bool stopping)
{
    std::vector<std::unique_ptr<Conn>> adopt;
    {
        std::lock_guard<std::mutex> lock(loop.mutex);
        adopt.swap(loop.pendingAdopt);
    }
    for (auto &owned : adopt) {
        Conn *conn = owned.get();
        conn->epollMask = EPOLLIN | EPOLLRDHUP;
        if (!loop.epoll.add(conn->fd, conn->epollMask, conn)) {
            warn("dracod: epoll add for new connection failed");
            ::close(conn->fd);
            _reaped.fetch_add(1);
            _active.fetch_sub(1);
            continue;
        }
        loop.conns.push_back(std::move(owned));
        if (stopping)
            beginDrain(loop, conn, false);
    }
}

void
SocketServer::pumpReplies(Loop &loop)
{
    std::vector<Loop::Reply> inbox;
    {
        std::lock_guard<std::mutex> lock(loop.mutex);
        inbox.swap(loop.inbox);
    }
    if (inbox.empty())
        return;
    std::vector<Conn *> touched;
    for (Loop::Reply &reply : inbox) {
        Conn *conn = reply.conn;
        conn->inflight--;
        if (!conn->pumpTouched) {
            conn->pumpTouched = true;
            touched.push_back(conn);
        }
        if (conn->discardOutput) {
            if (reply.hasRec && _obs)
                _obs->recordDropped(loop.index, 1);
            continue;
        }
        if (conn->outBuf.size() - conn->outPos + reply.frame.size() >
            _options.maxOutputBytes) {
            logWarnEvery("serve.backlog", 1000,
                         "dracod: connection output backlog over %zu "
                         "bytes, dropping connection",
                         _options.maxOutputBytes);
            if (reply.hasRec && _obs)
                _obs->recordDropped(loop.index, 1);
            beginDrain(loop, conn, true);
            continue;
        }
        appendOutput(conn, reply.frame.data(), reply.frame.size());
        if (reply.hasRec && _obs)
            conn->marks.push_back(
                Conn::FlushMark{conn->outQueuedBytes, reply.rec});
    }
    for (Conn *conn : touched) {
        conn->pumpTouched = false;
        flushOutput(loop, conn);
    }
}

void
SocketServer::appendOutput(Conn *conn, const uint8_t *data, size_t size)
{
    conn->outBuf.insert(conn->outBuf.end(), data, data + size);
    conn->outQueuedBytes += size;
}

void
SocketServer::readInput(Loop &loop, Conn *conn,
                        std::vector<uint8_t> &chunk)
{
    if (conn->http) {
        readHttp(loop, conn, chunk);
        return;
    }
    // One admission stamp per readiness callback: every frame parsed
    // out of this read shares it, reusing the single clock read.
    if (_obs)
        conn->lastReadNs = obs::nowNs();
    while (conn->state == ConnState::Open) {
        ssize_t r = ::read(conn->fd, chunk.data(), chunk.size());
        if (r > 0) {
            conn->parser.append(chunk.data(), static_cast<size_t>(r));
            if (!parseFrames(loop, conn)) {
                beginDrain(loop, conn, false);
                break;
            }
            if (static_cast<size_t>(r) < chunk.size())
                break; // Short read: the socket is drained.
            continue;
        }
        if (r == 0) {
            // EOF or client half-close: stop reading, but in-flight
            // batches still complete and their replies still flush.
            beginDrain(loop, conn, false);
            break;
        }
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
        beginDrain(loop, conn, true);
        break;
    }
    if (!conn->discardOutput && conn->outPos < conn->outBuf.size())
        flushOutput(loop, conn);
}

void
SocketServer::readHttp(Loop &loop, Conn *conn,
                       std::vector<uint8_t> &chunk)
{
    // HTTP/1.0, one request per connection: buffer until the header
    // terminator, answer, then drain (flush + reap). Scrapers open a
    // fresh connection per scrape, which keeps this path trivial.
    constexpr size_t kMaxHttpHead = 16u << 10;
    while (conn->state == ConnState::Open) {
        ssize_t r = ::read(conn->fd, chunk.data(), chunk.size());
        if (r > 0) {
            conn->httpBuf.append(reinterpret_cast<char *>(chunk.data()),
                                 static_cast<size_t>(r));
            if (conn->httpBuf.size() > kMaxHttpHead) {
                beginDrain(loop, conn, true);
                break;
            }
            if (conn->httpBuf.find("\r\n\r\n") != std::string::npos ||
                conn->httpBuf.find("\n\n") != std::string::npos) {
                handleHttp(loop, conn);
                break;
            }
            if (static_cast<size_t>(r) < chunk.size())
                break;
            continue;
        }
        if (r == 0) {
            beginDrain(loop, conn, false);
            break;
        }
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
        beginDrain(loop, conn, true);
        break;
    }
    if (!conn->discardOutput && conn->outPos < conn->outBuf.size())
        flushOutput(loop, conn);
}

void
SocketServer::handleHttp(Loop &loop, Conn *conn)
{
    // Parse "<METHOD> <target> ..." off the request line.
    std::string method;
    std::string target;
    {
        const std::string &head = conn->httpBuf;
        size_t eol = head.find_first_of("\r\n");
        std::string line = head.substr(0, eol);
        size_t sp1 = line.find(' ');
        if (sp1 != std::string::npos) {
            method = line.substr(0, sp1);
            size_t sp2 = line.find(' ', sp1 + 1);
            target = line.substr(sp1 + 1, sp2 == std::string::npos
                                              ? std::string::npos
                                              : sp2 - sp1 - 1);
        }
        size_t query = target.find('?');
        if (query != std::string::npos)
            target.resize(query);
    }

    std::string response;
    if (method != "GET") {
        response = obs::httpResponse(405, "text/plain",
                                     "method not allowed\n");
    } else if (target == "/healthz") {
        response = obs::httpResponse(200, "text/plain", "ok\n");
    } else if (target == "/metrics") {
        response = obs::httpResponse(
            200, "text/plain; version=0.0.4", metricsBody());
    } else if (target == "/statz") {
        response = obs::httpResponse(200, "application/json",
                                     statzBody());
    } else if (target == "/slowz") {
        response = obs::httpResponse(200, "application/json",
                                     _obs->slowzJson());
    } else {
        response = obs::httpResponse(404, "text/plain",
                                     "not found\n");
    }

    appendOutput(conn,
                 reinterpret_cast<const uint8_t *>(response.data()),
                 response.size());
    conn->httpBuf.clear();
    // Answer sent: close the read side and let the normal drain state
    // machine flush the response and reap the connection.
    beginDrain(loop, conn, false);
}

std::string
SocketServer::metricsBody() const
{
    MetricRegistry registry;
    _service.exportLiveMetrics(registry);
    registry.setCounter("serve.live.connections.accepted",
                        _accepted.load());
    registry.setCounter("serve.live.connections.reaped",
                        _reaped.load());
    registry.setGauge("serve.live.connections.active",
                      _active.load());
    return _obs->renderPrometheus(registry);
}

std::string
SocketServer::statzBody() const
{
    ServiceStatsSnapshot s;
    _service.serviceStats(s);
    MetricRegistry registry;
    registry.setCounter("tenants", s.tenants);
    registry.setCounter("resident", s.resident);
    registry.setCounter("snapshotted", s.snapshotted);
    registry.setCounter("evictions", s.evictions);
    registry.setCounter("restores", s.restores);
    registry.setCounter("restore_failures", s.restoreFailures);
    registry.setCounter("snapshot_put_failures", s.snapshotPutFailures);
    registry.setCounter("dedup_policies", s.dedupPolicies);
    registry.setCounter("dedup_hits", s.dedupHits);
    registry.setCounter("snapshot_bytes_written",
                        s.snapshotBytesWritten);
    registry.setCounter("snapshot_bytes_read", s.snapshotBytesRead);
    registry.setCounter("store_bytes", s.storeBytes);
    registry.setCounter("checks", s.checks);
    registry.setCounter("rejects", s.rejects);
    registry.setCounter("policy.swaps", s.policySwaps);
    registry.setCounter("policy.swap_failures", s.policySwapFailures);
    registry.setCounter("policy.stale_snapshot_discards",
                        s.staleSnapshotDiscards);
    registry.setCounter("policy.max_epoch", s.maxEpoch);
    registry.setCounter("connections.accepted", _accepted.load());
    registry.setCounter("connections.reaped", _reaped.load());
    registry.setCounter("connections.active", _active.load());
    return registry.toJson(true);
}

bool
SocketServer::parseFrames(Loop &loop, Conn *conn)
{
    std::vector<uint8_t> payload;
    for (;;) {
        switch (conn->parser.next(payload)) {
          case wire::FrameParser::Result::Need:
            return true;
          case wire::FrameParser::Result::Corrupt:
            warn("dracod: oversized frame length, closing connection");
            return false;
          case wire::FrameParser::Result::Frame:
            if (!handleFrame(loop, conn, payload))
                return false;
            if (conn->state != ConnState::Open)
                return true; // handleFrame began a drain itself.
            break;
        }
    }
}

void
SocketServer::sendControl(Loop &loop, Conn *conn,
                          const std::vector<uint8_t> &payload)
{
    if (conn->discardOutput)
        return;
    if (conn->outBuf.size() - conn->outPos + payload.size() + 4 >
        _options.maxOutputBytes) {
        logWarnEvery("serve.backlog", 1000,
                     "dracod: connection output backlog over %zu "
                     "bytes, dropping connection",
                     _options.maxOutputBytes);
        beginDrain(loop, conn, true);
        return;
    }
    const size_t before = conn->outBuf.size();
    if (!wire::appendFrame(conn->outBuf, payload))
        warn("dracod: oversized control reply dropped");
    conn->outQueuedBytes += conn->outBuf.size() - before;
}

bool
SocketServer::handleFrame(Loop &loop, Conn *conn,
                          const std::vector<uint8_t> &payload)
{
    std::vector<uint8_t> reply;
    switch (wire::peekType(payload)) {
      case wire::MsgType::Hello: {
        wire::Hello msg;
        if (!wire::decode(payload, msg))
            return false;
        wire::HelloReply r;
        r.version = wire::kProtocolVersion;
        r.shards = _service.shards();
        wire::encode(reply, r);
        sendControl(loop, conn, reply);
        return true;
      }
      case wire::MsgType::CreateTenant: {
        wire::CreateTenant msg;
        if (!wire::decode(payload, msg))
            return false;
        wire::CreateTenantReply r;
        std::optional<seccomp::Profile> profile =
            builtinProfileByName(msg.profile);
        if (!profile) {
            r.error = "unknown profile: " + msg.profile;
        } else {
            TenantOptions opts;
            if (msg.filterCopies > 0)
                opts.filterCopies = msg.filterCopies;
            if (msg.maxInFlight > 0)
                opts.maxInFlight = msg.maxInFlight;
            r.tenantId =
                _service.createTenant(msg.name, *profile, opts);
            if (r.tenantId == kInvalidTenant)
                r.error = "tenant table full or service stopping";
        }
        wire::encode(reply, r);
        sendControl(loop, conn, reply);
        return true;
      }
      case wire::MsgType::CheckBatch: {
        // The reply is produced by the shard worker when the batch
        // completes; the loop keeps decoding further frames, so one
        // connection can pipeline many batches.
        struct Pending {
            wire::CheckBatchReply reply;
            Batch batch;
            std::vector<os::SyscallRequest> reqs;
            obs::StageRecord rec;
            bool hasRec = false;
        };
        auto ctx = std::make_shared<Pending>();
        wire::CheckBatch msg;
        if (!wire::decode(payload, msg))
            return false;
        ctx->reply.batchId = msg.batchId;
        ctx->reply.resps.resize(msg.reqs.size());
        if (msg.reqs.empty()) {
            wire::encode(reply, ctx->reply);
            sendControl(loop, conn, reply);
            return true;
        }
        ctx->reqs = std::move(msg.reqs);
        conn->inflight++;
        TenantId tenantId = msg.tenantId;
        if (_obs) {
            ctx->hasRec = true;
            ctx->rec.admitNs = conn->lastReadNs;
            ctx->rec.parseNs = obs::nowNs();
            ctx->rec.batchId = msg.batchId;
            ctx->rec.tenant = tenantId;
        }
        Loop *owner = &loop;
        ctx->batch.onComplete([owner, conn, ctx] {
            // Runs on whichever thread completes the batch (a shard
            // worker, or the loop thread inline when the batch is
            // fully shed). It must not touch Conn state: the framed
            // reply goes through the owning loop's inbox and the loop
            // alone decrements inflight — which also keeps `conn`
            // alive until this reply has been pumped. The eventfd is
            // signalled under the inbox mutex so the loop cannot pump
            // this entry, finish draining, and let the server be
            // destroyed between our push and the wakeup write.
            std::vector<uint8_t> buf;
            wire::encode(buf, ctx->reply);
            std::vector<uint8_t> frame;
            wire::appendFrame(frame, buf);
            Loop::Reply entry{conn, std::move(frame)};
            if (ctx->hasRec) {
                // Copy the record out: ctx dies once this callback
                // returns and the loop pumps the reply, but the flush
                // stamp lands later, when the bytes hit the socket.
                entry.hasRec = true;
                entry.rec = ctx->rec;
            }
            std::lock_guard<std::mutex> lock(owner->mutex);
            owner->inbox.push_back(std::move(entry));
            owner->wake.signal();
        });
        _service.submitBatch(tenantId, ctx->reqs.data(),
                             static_cast<uint32_t>(ctx->reqs.size()),
                             ctx->reply.resps.data(), ctx->batch,
                             ctx->hasRec ? &ctx->rec : nullptr);
        return true;
      }
      case wire::MsgType::TenantStatsReq: {
        wire::TenantStatsReq msg;
        if (!wire::decode(payload, msg))
            return false;
        wire::TenantStatsReply r;
        r.ok = _service.tenantStats(msg.tenantId, r.stats);
        wire::encode(reply, r);
        sendControl(loop, conn, reply);
        return true;
      }
      case wire::MsgType::EvictTenant: {
        wire::EvictTenant msg;
        if (!wire::decode(payload, msg))
            return false;
        wire::EvictTenantReply r;
        r.ok = _service.evictTenant(msg.tenantId);
        wire::encode(reply, r);
        sendControl(loop, conn, reply);
        return true;
      }
      case wire::MsgType::UpdateProfile: {
        wire::UpdateProfile msg;
        if (!wire::decode(payload, msg))
            return false;
        wire::UpdateProfileReply r;
        std::optional<seccomp::Profile> profile =
            builtinProfileByName(msg.profile);
        if (!profile) {
            r.error = "unknown profile: " + msg.profile;
        } else {
            // Blocks this loop thread until the owning shard worker
            // publishes the epoch — control ops ride the same FIFO as
            // checks (cf. TenantStatsReq), and that shared queue
            // position is exactly what makes the swap boundary
            // deterministic for everything this client pipelined
            // before the UpdateProfile frame.
            r.ok = _service.swapProfile(msg.tenantId, *profile,
                                        &r.epoch);
            if (!r.ok)
                r.error = "unknown, evicted, or stopping tenant";
        }
        wire::encode(reply, r);
        sendControl(loop, conn, reply);
        return true;
      }
      case wire::MsgType::ServiceStatsReq: {
        if (payload.size() != 1)
            return false;
        wire::ServiceStatsReply r;
        _service.serviceStats(r.stats);
        wire::encode(reply, r);
        sendControl(loop, conn, reply);
        return true;
      }
      case wire::MsgType::Shutdown: {
        wire::encodeShutdownReply(reply);
        sendControl(loop, conn, reply);
        requestStop();
        return false;
      }
      default:
        warn("dracod: unexpected frame type %u, closing connection",
             static_cast<unsigned>(wire::peekType(payload)));
        return false;
    }
}

void
SocketServer::flushOutput(Loop &loop, Conn *conn)
{
    if (conn->discardOutput)
        return;
    while (conn->outPos < conn->outBuf.size()) {
        ssize_t w = ::send(conn->fd, conn->outBuf.data() + conn->outPos,
                           conn->outBuf.size() - conn->outPos,
                           MSG_NOSIGNAL);
        if (w > 0) {
            conn->outPos += static_cast<size_t>(w);
            conn->outSentBytes += static_cast<uint64_t>(w);
            continue;
        }
        if (w < 0 && errno == EINTR)
            continue;
        if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            break;
        // A failed write kills the whole connection, reader included:
        // the peer can never see the replies it is owed, so decoding
        // further requests for it would only leak work.
        beginDrain(loop, conn, true);
        return;
    }
    commitFlushed(loop, conn);
    if (conn->outPos == conn->outBuf.size()) {
        conn->outBuf.clear();
        conn->outPos = 0;
    } else if (conn->outPos >= (64u << 10)) {
        conn->outBuf.erase(conn->outBuf.begin(),
                           conn->outBuf.begin() +
                               static_cast<ptrdiff_t>(conn->outPos));
        conn->outPos = 0;
    }
    updateInterest(loop, conn);
}

/**
 * Stamp and commit every flush mark whose reply bytes have fully hit
 * the socket. Cumulative byte counters make this immune to outBuf
 * compaction, and the clock is read at most once per call.
 */
void
SocketServer::commitFlushed(Loop &loop, Conn *conn)
{
    if (!_obs || conn->marks.empty())
        return;
    uint64_t now = 0;
    while (!conn->marks.empty() &&
           conn->marks.front().target <= conn->outSentBytes) {
        if (now == 0)
            now = obs::nowNs();
        obs::StageRecord rec = conn->marks.front().rec;
        conn->marks.pop_front();
        rec.flushedNs = now;
        _obs->commit(loop.index, rec);
    }
}

/** Discard marks whose replies will never flush (connection died). */
void
SocketServer::dropMarks(Loop &loop, Conn *conn)
{
    if (!_obs || conn->marks.empty())
        return;
    _obs->recordDropped(loop.index, conn->marks.size());
    conn->marks.clear();
}

void
SocketServer::beginDrain(Loop &loop, Conn *conn, bool discardOutput)
{
    if (discardOutput && !conn->discardOutput) {
        conn->discardOutput = true;
        conn->outBuf.clear();
        conn->outPos = 0;
        dropMarks(loop, conn);
        ::shutdown(conn->fd, SHUT_RDWR);
    }
    if (conn->state == ConnState::Open) {
        conn->state = ConnState::Draining;
        if (!conn->discardOutput)
            ::shutdown(conn->fd, SHUT_RD);
    }
    updateInterest(loop, conn);
}

void
SocketServer::updateInterest(Loop &loop, Conn *conn)
{
    uint32_t mask = 0;
    if (conn->state == ConnState::Open)
        mask |= EPOLLIN | EPOLLRDHUP;
    if (!conn->discardOutput && conn->outPos < conn->outBuf.size())
        mask |= EPOLLOUT;
    if (mask != conn->epollMask) {
        conn->epollMask = mask;
        loop.epoll.mod(conn->fd, mask, conn);
    }
}

void
SocketServer::beginStopDrain(Loop &loop)
{
    for (auto &conn : loop.conns)
        if (conn->state == ConnState::Open)
            beginDrain(loop, conn.get(), false);
}

void
SocketServer::reapConnections(Loop &loop)
{
    for (auto it = loop.conns.begin(); it != loop.conns.end();) {
        Conn *conn = it->get();
        bool flushed = conn->discardOutput ||
                       conn->outPos == conn->outBuf.size();
        if (conn->state == ConnState::Draining &&
            conn->inflight == 0 && flushed) {
            dropMarks(loop, conn); // Leftovers can never flush now.
            loop.epoll.del(conn->fd);
            ::close(conn->fd);
            _reaped.fetch_add(1);
            _active.fetch_sub(1);
            it = loop.conns.erase(it);
        } else {
            ++it;
        }
    }
}

void
SocketServer::requestStop()
{
    bool already;
    {
        std::lock_guard<std::mutex> lock(_waitMutex);
        already = _stop.exchange(true);
    }
    if (already)
        return;
    _waitCv.notify_all();
    for (auto &loop : _loops)
        loop->wake.signal();
}

void
SocketServer::wait()
{
    {
        std::unique_lock<std::mutex> lock(_waitMutex);
        _waitCv.wait(lock, [this] { return _stop.load(); });
    }
    stop();
}

void
SocketServer::stop()
{
    requestStop();
    if (_stopped.exchange(true))
        return;
    for (auto &loop : _loops)
        if (loop->thread.joinable())
            loop->thread.join();
    // A connection accepted in the instant before loop 0 observed the
    // stop can land in the adoption queue of a loop that had already
    // drained and exited — nobody will ever adopt it. Reap those here
    // (threads are joined, so the queues are ours), or the fds leak
    // and their clients block forever on a Hello reply.
    for (auto &loop : _loops) {
        for (auto &conn : loop->pendingAdopt) {
            ::close(conn->fd);
            _reaped.fetch_add(1);
            _active.fetch_sub(1);
        }
        loop->pendingAdopt.clear();
    }
    _loops.clear();
    if (_unixListenFd >= 0) {
        ::close(_unixListenFd);
        _unixListenFd = -1;
    }
    if (_tcpListenFd >= 0) {
        ::close(_tcpListenFd);
        _tcpListenFd = -1;
    }
    if (_metricsListenFd >= 0) {
        ::close(_metricsListenFd);
        _metricsListenFd = -1;
    }
    if (!_options.socketPath.empty())
        ::unlink(_options.socketPath.c_str());
}

// ---- SocketClient ----

std::unique_ptr<SocketClient>
SocketClient::connectTo(const Endpoint &endpoint)
{
    int fd = draco::serve::connectEndpoint(endpoint);
    if (fd < 0)
        return nullptr;
    auto client = std::unique_ptr<SocketClient>(new SocketClient(fd));
    std::vector<uint8_t> request;
    std::vector<uint8_t> reply;
    wire::encode(request, wire::Hello{});
    wire::HelloReply hello;
    if (!client->roundTrip(request, reply) ||
        !wire::decode(reply, hello) ||
        hello.version != wire::kProtocolVersion) {
        warn("dracoload: handshake with %s failed",
             endpoint.describe().c_str());
        return nullptr;
    }
    client->_serverShards = hello.shards;
    return client;
}

std::unique_ptr<SocketClient>
SocketClient::connect(const std::string &socketPath)
{
    return connectTo(Endpoint::unix_(socketPath));
}

std::unique_ptr<SocketClient>
SocketClient::connectTcp(const std::string &hostPort)
{
    std::optional<Endpoint> ep = Endpoint::parseTcp(hostPort);
    if (!ep) {
        warn("dracoload: bad TCP address: %s", hostPort.c_str());
        return nullptr;
    }
    return connectTo(*ep);
}

SocketClient::~SocketClient()
{
    if (_fd >= 0)
        ::close(_fd);
}

bool
SocketClient::roundTrip(const std::vector<uint8_t> &request,
                        std::vector<uint8_t> &reply)
{
    return wire::writeFrame(_fd, request) && wire::readFrame(_fd, reply);
}

TenantId
SocketClient::createTenant(const std::string &name,
                           const std::string &profileName,
                           const TenantOptions &options)
{
    wire::CreateTenant msg;
    msg.name = name;
    msg.profile = profileName;
    msg.maxInFlight = options.maxInFlight;
    msg.filterCopies = static_cast<uint8_t>(options.filterCopies);
    std::vector<uint8_t> request;
    std::vector<uint8_t> reply;
    wire::encode(request, msg);
    wire::CreateTenantReply r;
    if (!roundTrip(request, reply) || !wire::decode(reply, r)) {
        warn("dracoload: CreateTenant transport failure");
        return kInvalidTenant;
    }
    if (r.tenantId == kInvalidTenant && !r.error.empty())
        warn("dracoload: CreateTenant '%s': %s", name.c_str(),
             r.error.c_str());
    return r.tenantId;
}

bool
SocketClient::checkBatch(TenantId id, const os::SyscallRequest *reqs,
                         uint32_t count, CheckResponse *resps)
{
    wire::CheckBatch msg;
    msg.batchId = _nextBatchId++;
    msg.tenantId = id;
    msg.reqs.assign(reqs, reqs + count);
    std::vector<uint8_t> request;
    std::vector<uint8_t> reply;
    wire::encode(request, msg);
    wire::CheckBatchReply r;
    if (!roundTrip(request, reply) || !wire::decode(reply, r) ||
        r.batchId != msg.batchId || r.resps.size() != count) {
        return false;
    }
    std::copy(r.resps.begin(), r.resps.end(), resps);
    return true;
}

bool
SocketClient::tenantStats(TenantId id, TenantStats &out)
{
    wire::TenantStatsReq msg;
    msg.tenantId = id;
    std::vector<uint8_t> request;
    std::vector<uint8_t> reply;
    wire::encode(request, msg);
    wire::TenantStatsReply r;
    if (!roundTrip(request, reply) || !wire::decode(reply, r) || !r.ok)
        return false;
    out = r.stats;
    return true;
}

bool
SocketClient::evictTenant(TenantId id)
{
    wire::EvictTenant msg;
    msg.tenantId = id;
    std::vector<uint8_t> request;
    std::vector<uint8_t> reply;
    wire::encode(request, msg);
    wire::EvictTenantReply r;
    return roundTrip(request, reply) && wire::decode(reply, r) && r.ok;
}

bool
SocketClient::updateProfile(TenantId id, const std::string &profileName,
                            uint64_t *epochOut)
{
    wire::UpdateProfile msg;
    msg.tenantId = id;
    msg.profile = profileName;
    std::vector<uint8_t> request;
    std::vector<uint8_t> reply;
    wire::encode(request, msg);
    wire::UpdateProfileReply r;
    if (!roundTrip(request, reply) || !wire::decode(reply, r))
        return false;
    if (!r.ok && !r.error.empty())
        warn("dracoload: UpdateProfile tenant %u -> '%s': %s", id,
             profileName.c_str(), r.error.c_str());
    if (r.ok && epochOut)
        *epochOut = r.epoch;
    return r.ok;
}

bool
SocketClient::serviceStats(ServiceStatsSnapshot &out)
{
    std::vector<uint8_t> request;
    std::vector<uint8_t> reply;
    wire::encodeServiceStatsReq(request);
    wire::ServiceStatsReply r;
    if (!roundTrip(request, reply) || !wire::decode(reply, r))
        return false;
    out = r.stats;
    return true;
}

bool
SocketClient::shutdownServer()
{
    std::vector<uint8_t> request;
    std::vector<uint8_t> reply;
    wire::encodeShutdown(request);
    return roundTrip(request, reply) &&
           wire::peekType(reply) == wire::MsgType::ShutdownReply;
}

} // namespace draco::serve
