#include "serve/service.hh"

#include <algorithm>

#include "lifecycle/snapshot.hh"
#include "lifecycle/store.hh"
#include "obs/serveobs.hh"
#include "obs/tracer.hh"
#include "os/kernelcosts.hh"
#include "support/logging.hh"

namespace draco::serve {

const char *
checkStatusName(CheckStatus status)
{
    switch (status) {
      case CheckStatus::Allowed: return "allowed";
      case CheckStatus::Denied: return "denied";
      case CheckStatus::Overloaded: return "overloaded";
      case CheckStatus::UnknownTenant: return "unknown-tenant";
      case CheckStatus::ShuttingDown: return "shutting-down";
    }
    return "invalid";
}

// ---- Batch ----

void
Batch::arm(uint32_t n)
{
    _outstanding.fetch_add(n, std::memory_order_acq_rel);
}

void
Batch::complete(uint32_t n)
{
    if (n == 0)
        return;
    std::function<void()> callback;
    {
        // The final decrement must happen under the mutex, and the
        // waiter must observe it under the same mutex: if done()
        // became true before we took the lock, wait() could return
        // and the caller destroy this Batch while we still touch
        // _callback and _cv. With both inside the critical section,
        // the completer's last access is the unlock, which a waiter's
        // lock acquisition synchronizes with before destruction.
        std::lock_guard<std::mutex> lock(_mutex);
        uint32_t before =
            _outstanding.fetch_sub(n, std::memory_order_acq_rel);
        if (before < n)
            panic("Batch: completed %u with only %u outstanding", n, before);
        if (before != n)
            return;
        callback = std::move(_callback);
        _callback = nullptr;
        _cv.notify_all();
    }
    if (callback)
        callback();
}

void
Batch::wait()
{
    // No lock-free fast path: returning on a bare done() load could
    // race a completer still inside its critical section (see
    // complete()). Observing done() under the mutex is what makes it
    // safe to destroy the Batch the moment wait() returns.
    std::unique_lock<std::mutex> lock(_mutex);
    _cv.wait(lock, [this] { return done(); });
}

void
Batch::onComplete(std::function<void()> callback)
{
    std::lock_guard<std::mutex> lock(_mutex);
    _callback = std::move(callback);
}

// ---- CheckService ----

namespace {

/** Requests an item charges against queue capacity and drain budget. */
uint32_t
itemRequests(uint32_t count, bool isCheck)
{
    return isCheck ? count : 1;
}

} // namespace

CheckService::CheckService(const ServiceOptions &options)
    : _options(options),
      _costs(options.costs ? options.costs : &os::newKernelCosts()),
      _pool(std::max(1u, options.shards),
            support::ThreadPool::Spawn::Always)
{
    if (_options.shards == 0)
        _options.shards = 1;
    if (_options.maxBatch == 0)
        _options.maxBatch = 1;
    if (_options.queueCapacity == 0)
        fatal("CheckService: queueCapacity must be positive");
    if (_options.maxTenants == 0)
        fatal("CheckService: maxTenants must be positive");

    if (_options.maxResidentTenants != 0) {
        // Service-wide budget, rounded up per shard so every shard
        // keeps at least one tenant materialized.
        _shardResidentCap = (_options.maxResidentTenants +
                             _options.shards - 1) / _options.shards;
        _store = _options.snapshotStore;
        if (!_store) {
            _ownedStore =
                std::make_unique<lifecycle::MemorySnapshotStore>();
            _store = _ownedStore.get();
        }
    }

    _tenants.resize(_options.maxTenants);
    _shards.reserve(_options.shards);
    for (unsigned i = 0; i < _options.shards; ++i) {
        auto shard = std::make_unique<Shard>();
        if (_options.session) {
            obs::Tracer *tracer = _options.session->tracer(
                "serve/shard" + std::to_string(i));
            if (tracer) {
                Shard *s = shard.get();
                tracer->addChannel("queue_depth", [s] {
                    return static_cast<double>(s->depth.load());
                });
                tracer->addChannel("batch_size", [s] {
                    return static_cast<double>(s->lastBatch.load());
                });
                tracer->addChannel("rejects", [s] {
                    return static_cast<double>(s->rejects.load());
                });
                tracer->addChannel("resident", [s] {
                    return static_cast<double>(s->resident.load());
                });
            }
            shard->tracer = tracer;
        }
        _shards.push_back(std::move(shard));
    }

    for (unsigned i = 0; i < _options.shards; ++i)
        _pool.submit([this, i] { shardLoop(i); });
}

CheckService::~CheckService()
{
    stop();
}

CheckService::TenantState *
CheckService::tenant(TenantId id) const
{
    uint32_t count = _tenantCount.load(std::memory_order_acquire);
    if (id == kInvalidTenant || id > count)
        return nullptr;
    return _tenants[id - 1].get();
}

TenantId
CheckService::createTenant(const std::string &name,
                           const seccomp::Profile &profile,
                           const TenantOptions &tenantOptions)
{
    if (_stopping.load())
        return kInvalidTenant;
    std::lock_guard<std::mutex> lock(_tenantMutex);
    auto existing = _nameIndex.find(name);
    if (existing != _nameIndex.end())
        return existing->second;
    uint32_t count = _tenantCount.load(std::memory_order_acquire);
    if (count == _options.maxTenants) {
        warn("CheckService: tenant table full (%u), rejecting '%s'",
             _options.maxTenants, name.c_str());
        return kInvalidTenant;
    }

    auto state = std::make_shared<TenantState>();
    state->name = name;
    state->id = count + 1;
    state->shard = count % shards();
    state->opts = tenantOptions;
    if (state->opts.filterCopies == 0)
        state->opts.filterCopies = 1;
    if (state->opts.maxInFlight == 0)
        state->opts.maxInFlight = 1;
    // The compile is interned by content: a million tenants on the
    // same profile share one filter chain and spec map. It seeds the
    // tenant's epoch slot as epoch 1; live swaps publish from there.
    auto epoch = state->epochs.install(_epochs.intern(profile));
    if (!lifecycleEnabled()) {
        // No resident cap: build the mutable half eagerly, as before.
        // Under a cap the owning shard worker materializes it on the
        // tenant's first request (and may drop it again later).
        state->checker = std::make_unique<core::DracoSoftwareChecker>(
            epoch->policy, state->opts.filterCopies);
    }

    _tenants[count] = std::move(state);
    _nameIndex.emplace(name, count + 1);
    _tenantCount.store(count + 1, std::memory_order_release);
    return count + 1;
}

TenantId
CheckService::findTenant(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(_tenantMutex);
    auto it = _nameIndex.find(name);
    return it == _nameIndex.end() ? kInvalidTenant : it->second;
}

uint32_t
CheckService::retryAfterUs(const Shard &shard) const
{
    double perCheckNs = shard.ewmaCheckNs.load(std::memory_order_relaxed);
    double depth = shard.depth.load(std::memory_order_relaxed);
    double us = depth * perCheckNs / 1000.0;
    return static_cast<uint32_t>(std::clamp(us, 1.0, 100000.0));
}

void
CheckService::shed(TenantState *t, CheckResponse *resps, uint32_t count,
                   Batch &batch, CheckStatus status, uint32_t retryUs)
{
    for (uint32_t i = 0; i < count; ++i) {
        resps[i].status = status;
        resps[i].path = 0;
        resps[i].retryAfterUs = retryUs;
        resps[i].epoch = 0;
    }
    if (t && status == CheckStatus::Overloaded)
        t->rejects.fetch_add(count, std::memory_order_relaxed);
    batch.complete(count);
}

bool
CheckService::enqueue(Shard &shard, Item item)
{
    bool isCheck = item.op == Op::Check;
    uint32_t charge = itemRequests(item.count, isCheck);
    {
        std::lock_guard<std::mutex> lock(shard.mutex);
        if (_stopping.load())
            return false;
        // Control items (Stats/Evict) are never shed: the control plane
        // must stay responsive under data-plane overload.
        if (isCheck &&
            shard.queuedRequests + charge > _options.queueCapacity) {
            shard.queueFullRejects += charge;
            shard.rejects.fetch_add(charge, std::memory_order_relaxed);
            return false;
        }
        shard.queue.push_back(item);
        shard.queuedRequests += charge;
        shard.depth.store(shard.queuedRequests,
                          std::memory_order_relaxed);
        shard.peakDepth = std::max(shard.peakDepth, shard.queuedRequests);
        shard.depthStat.add(shard.queuedRequests);
    }
    shard.wake.notify_one();
    return true;
}

void
CheckService::submitBatch(TenantId id, const os::SyscallRequest *reqs,
                          uint32_t count, CheckResponse *resps,
                          Batch &batch, obs::StageRecord *obsRec)
{
    if (count == 0)
        return;
    batch.arm(count);

    TenantState *t = tenant(id);
    if (obsRec) {
        // Stamp before any shed path: a fully-shed batch completes
        // inline below (running the batch callback on this thread), so
        // the record must already be coherent. Later stamps default to
        // enqueue time so shed records show zero queue/check stages.
        obsRec->enqueueNs = obs::nowNs();
        obsRec->drainStartNs = obsRec->enqueueNs;
        obsRec->checkDoneNs = obsRec->enqueueNs;
        obsRec->batchSize = count;
        obsRec->shard = t ? t->shard : 0;
    }
    if (!t || t->evicted.load()) {
        if (obsRec)
            obsRec->shed = count;
        shed(nullptr, resps, count, batch, CheckStatus::UnknownTenant, 0);
        return;
    }
    if (_stopping.load()) {
        if (obsRec)
            obsRec->shed = count;
        shed(nullptr, resps, count, batch, CheckStatus::ShuttingDown, 0);
        return;
    }

    Shard &shard = *_shards[t->shard];

    // Tenant in-flight cap: a flooder sheds its own excess here and the
    // reject is attributed to it, before it can crowd the shard queue.
    uint32_t before = t->inFlight.fetch_add(count,
                                            std::memory_order_acq_rel);
    if (before + count > t->opts.maxInFlight) {
        t->inFlight.fetch_sub(count, std::memory_order_acq_rel);
        shard.rejects.fetch_add(count, std::memory_order_relaxed);
        if (obsRec)
            obsRec->shed = count;
        logWarnEvery("serve.tenant_cap.s" + std::to_string(t->shard),
                     1000,
                     "CheckService: tenant '%s' over its in-flight cap "
                     "(%u), shedding %u requests", t->name.c_str(),
                     t->opts.maxInFlight, count);
        shed(t, resps, count, batch, CheckStatus::Overloaded,
             retryAfterUs(shard));
        return;
    }

    Item item;
    item.op = Op::Check;
    item.tenant = t;
    item.reqs = reqs;
    item.resps = resps;
    item.count = count;
    item.batch = &batch;
    item.rec = obsRec;
    if (!enqueue(shard, item)) {
        t->inFlight.fetch_sub(count, std::memory_order_acq_rel);
        CheckStatus status = _stopping.load()
            ? CheckStatus::ShuttingDown : CheckStatus::Overloaded;
        uint32_t retryUs = status == CheckStatus::Overloaded
            ? retryAfterUs(shard) : 0;
        if (obsRec)
            obsRec->shed = count;
        if (status == CheckStatus::Overloaded)
            logWarnEvery("serve.queue_full.s" + std::to_string(t->shard),
                         1000,
                         "CheckService: shard %u queue full (capacity "
                         "%u), shedding %u requests", t->shard,
                         _options.queueCapacity, count);
        shed(t, resps, count, batch, status, retryUs);
    }
}

CheckResponse
CheckService::check(TenantId id, const os::SyscallRequest &req)
{
    CheckResponse resp;
    Batch batch;
    submitBatch(id, &req, 1, &resp, batch);
    batch.wait();
    return resp;
}

void
CheckService::snapshotTenant(const TenantState &t, TenantStats &out) const
{
    out.name = t.name;
    out.id = t.id;
    out.shard = t.shard;
    out.evicted = t.evicted.load();
    out.check = t.checker ? t.checker->stats() : t.frozenStats;
    out.allowed = t.allowed;
    out.denied = t.denied;
    out.rejects = t.rejects.load();
    out.busyNs = t.busyNs;
    out.epoch = t.epochs.epoch();
    out.swaps = t.swaps;
}

bool
CheckService::tenantStats(TenantId id, TenantStats &out)
{
    TenantState *t = tenant(id);
    if (!t)
        return false;
    if (_stopping.load()) {
        // Workers are draining or gone; after stop() the service is
        // quiesced and a direct snapshot is race-free.
        snapshotTenant(*t, out);
        return true;
    }

    Batch batch;
    batch.arm(1);
    Item item;
    item.op = Op::Stats;
    item.tenant = t;
    item.batch = &batch;
    item.statsOut = &out;
    if (!enqueue(*_shards[t->shard], item)) {
        batch.complete(1);
        snapshotTenant(*t, out);
        return true;
    }
    batch.wait();
    return true;
}

bool
CheckService::evictTenant(TenantId id)
{
    TenantState *t = tenant(id);
    if (!t || t->evicted.exchange(true))
        return false;

    {
        // Free the name for re-creation; the slot itself is not reused.
        std::lock_guard<std::mutex> lock(_tenantMutex);
        auto it = _nameIndex.find(t->name);
        if (it != _nameIndex.end() && it->second == id)
            _nameIndex.erase(it);
    }

    // New submits reject from here on; requests already queued precede
    // this Evict item in the shard FIFO, so they still check before the
    // worker tears the checker down.
    Batch batch;
    batch.arm(1);
    Item item;
    item.op = Op::Evict;
    item.tenant = t;
    item.batch = &batch;
    if (!enqueue(*_shards[t->shard], item)) {
        // Stopping: leave the checker for the service dtor — a worker
        // may still be draining this tenant's queued requests.
        batch.complete(1);
        return true;
    }
    batch.wait();
    return true;
}

bool
CheckService::swapProfile(TenantId id, const seccomp::Profile &profile,
                          uint64_t *epochOut)
{
    TenantState *t = tenant(id);
    if (!t || t->evicted.load() || _stopping.load()) {
        _epochs.countSwapFailure();
        return false;
    }

    // RCU-style: prepare the next epoch entirely off to the side — the
    // compile (or content-addressed share) runs on this thread, so the
    // owning worker only ever pays for the publication itself.
    std::shared_ptr<const core::CompiledPolicy> compiled =
        _epochs.intern(profile);

    // The swap rides the tenant's shard FIFO like every control op:
    // requests enqueued before this point check under the old epoch,
    // requests after it under the new one, and publication can never
    // land mid-item — that FIFO position IS the swap boundary, and it
    // is the same at any shard count because a tenant has one queue.
    Batch batch;
    batch.arm(1);
    Item item;
    item.op = Op::Swap;
    item.tenant = t;
    item.batch = &batch;
    item.swapPolicy = std::move(compiled);
    item.epochOut = epochOut;
    if (!enqueue(*_shards[t->shard], item)) {
        // Stopping: no worker will publish; fail rather than mutate
        // tenant state off its owning thread.
        batch.complete(1);
        _epochs.countSwapFailure();
        return false;
    }
    batch.wait();
    return true;
}

void
CheckService::shardLoop(size_t index)
{
    Shard &shard = *_shards[index];
    ScopedLogContext logContext("serve/shard" + std::to_string(index));
    std::vector<Item> items;
    items.reserve(_options.maxBatch);

    for (;;) {
        {
            std::unique_lock<std::mutex> lock(shard.mutex);
            shard.wake.wait(lock, [&] {
                return _stopping.load() || !shard.queue.empty();
            });
            if (shard.queue.empty())
                break; // stopping and fully drained
            uint32_t budget = _options.maxBatch;
            while (!shard.queue.empty()) {
                Item &front = shard.queue.front();
                uint32_t charge = itemRequests(front.count,
                                               front.op == Op::Check);
                // Always take at least one item per wakeup, then keep
                // draining while the next whole item fits the budget.
                if (!items.empty() && charge > budget)
                    break;
                items.push_back(front);
                shard.queue.pop_front();
                shard.queuedRequests -= std::min(shard.queuedRequests,
                                                 charge);
                budget -= std::min(budget, charge);
                if (budget == 0)
                    break;
            }
            shard.depth.store(shard.queuedRequests,
                              std::memory_order_relaxed);
        }
        process(shard, items);
        items.clear();
    }
}

void
CheckService::process(Shard &shard, std::vector<Item> &items)
{
    uint32_t requestsChecked = 0;
    double drainNs = 0.0;

    // One wall-clock read per drain, taken lazily at the first
    // instrumented item: every record in this drain shares it, so
    // observability costs O(records), not O(requests), clock reads.
    uint64_t drainStartNs = 0;

    // Batch completions are deferred past the shard-counter updates
    // below: a waiter woken by its batch must observe totalChecks()/
    // busy-time figures that already include its own requests.
    std::vector<std::pair<Batch *, uint32_t>> completions;
    completions.reserve(items.size());

    for (Item &item : items) {
        TenantState *t = item.tenant;
        switch (item.op) {
          case Op::Check: {
            if (item.rec) {
                if (drainStartNs == 0)
                    drainStartNs = obs::nowNs();
                item.rec->drainStartNs = drainStartNs;
            }
            if (!t->checker && !t->evicted.load() &&
                t->epochs.epoch() != 0)
                materializeChecker(shard, *t);
            if (!t->checker) {
                // A submit that raced the eviction flag can land behind
                // the Evict item; its state is gone, so it rejects.
                for (uint32_t i = 0; i < item.count; ++i) {
                    item.resps[i].status = CheckStatus::UnknownTenant;
                    item.resps[i].path = 0;
                    item.resps[i].retryAfterUs = 0;
                    item.resps[i].epoch = 0;
                }
                if (item.rec)
                    item.rec->shed = item.count;
            } else {
                // One relaxed load per item: the checker was rebuilt at
                // the same FIFO step the epoch was published, so it is
                // the epoch's state — this id just labels the verdicts.
                const uint64_t epochId = t->epochs.epoch();
                uint32_t allowed = 0;
                for (uint32_t i = 0; i < item.count; ++i) {
                    core::SwCheckOutcome out =
                        t->checker->check(item.reqs[i]);
                    double ns = core::swCheckCostNs(
                        out, *_costs, t->opts.filterCopies);
                    t->busyNs += ns;
                    drainNs += ns;
                    CheckResponse &resp = item.resps[i];
                    resp.status = out.allowed ? CheckStatus::Allowed
                                              : CheckStatus::Denied;
                    resp.path = static_cast<uint8_t>(out.path);
                    resp.retryAfterUs = 0;
                    resp.epoch = epochId;
                    if (out.allowed) {
                        ++t->allowed;
                        ++allowed;
                    } else {
                        ++t->denied;
                    }
                }
                requestsChecked += item.count;
                if (item.rec) {
                    item.rec->allowed = allowed;
                    item.rec->denied = item.count - allowed;
                }
            }
            if (item.rec)
                item.rec->checkDoneNs = obs::nowNs();
            if (_shardResidentCap && t->checker)
                shard.lru.touch(t->id);
            t->inFlight.fetch_sub(item.count, std::memory_order_acq_rel);
            completions.emplace_back(item.batch, item.count);
            break;
          }
          case Op::Stats:
            snapshotTenant(*t, *item.statsOut);
            completions.emplace_back(item.batch, 1);
            break;
          case Op::Evict:
            shard.lru.erase(t->id);
            if (t->hasSnapshot && _store) {
                _store->remove(t->name);
                t->hasSnapshot = false;
                _snapshotted.fetch_sub(1, std::memory_order_relaxed);
            }
            // Admin eviction discards state for good: evicted tenants
            // have always reported empty check stats.
            t->frozenStats = {};
            t->checker.reset();
            completions.emplace_back(item.batch, 1);
            break;
          case Op::Swap: {
            // The deterministic swap boundary: every request queued
            // ahead of this item has already checked under the old
            // epoch. Publish the new one and rebuild the VAT+SPT
            // namespace cold in the same step, so no verdict cached
            // under the retired policy can ever be served again.
            // Cumulative counters survive the rebuild — a swap is a
            // policy change, not a tenant reset.
            auto epoch = t->epochs.publish(item.swapPolicy);
            ++t->swaps;
            if (item.epochOut)
                *item.epochOut = epoch->epoch;
            if (t->checker) {
                core::SwCheckStats kept = t->checker->stats();
                t->checker =
                    std::make_unique<core::DracoSoftwareChecker>(
                        epoch->policy, t->opts.filterCopies);
                t->checker->restoreStats(kept);
            }
            // A snapshotted tenant keeps its `.dtss` for now: the
            // restore path compares the snapshot's programKey against
            // the then-current epoch and discards it as stale — the
            // evicted-then-swapped tenant fails closed to this epoch.
            _epochs.countSwap(epoch->epoch);
            completions.emplace_back(item.batch, 1);
            break;
          }
        }
    }

    shard.busyNs += drainNs;
    ++shard.drains;
    shard.processed += requestsChecked;
    shard.processedMirror.store(shard.processed,
                                std::memory_order_relaxed);
    shard.busyNsMirror.store(shard.busyNs, std::memory_order_relaxed);
    shard.batchStat.add(requestsChecked);
    shard.lastBatch.store(requestsChecked, std::memory_order_relaxed);
    if (_shardResidentCap) {
        enforceResidentCap(shard);
        shard.resident.store(static_cast<uint32_t>(shard.lru.size()),
                             std::memory_order_relaxed);
    }
    if (requestsChecked > 0) {
        double perCheck = drainNs / requestsChecked;
        double old = shard.ewmaCheckNs.load(std::memory_order_relaxed);
        shard.ewmaCheckNs.store(0.8 * old + 0.2 * perCheck,
                                std::memory_order_relaxed);
    }
    if (shard.tracer) {
        // The modeled busy clock drives telemetry, so exported samples
        // are deterministic regardless of host timing.
        shard.tracer->setNowNs(shard.busyNs);
        shard.tracer->maybeSample();
    }

    for (auto &[batch, count] : completions)
        batch->complete(count);
}

void
CheckService::materializeChecker(Shard &shard, TenantState &t)
{
    std::shared_ptr<const policy::PolicyEpoch> epoch = t.epochs.pin();
    t.checker = std::make_unique<core::DracoSoftwareChecker>(
        epoch->policy, t.opts.filterCopies);

    if (t.hasSnapshot && _store) {
        std::vector<uint8_t> bytes;
        std::string error;
        bool ok = _store->get(t.name, bytes);
        if (!ok)
            error = "snapshot missing from store";

        // Staleness probe before the restore: a profile swap while the
        // tenant sat evicted leaves a `.dtss` whose VAT belongs to a
        // retired epoch. A structurally valid snapshot keyed to a
        // different policy is discarded outright — distinct from a
        // corrupt one, which still counts as a restore failure below.
        uint64_t snapshotKey = 0;
        bool stale =
            ok &&
            lifecycle::peekSnapshotPolicyKey(bytes, snapshotKey,
                                             nullptr) &&
            snapshotKey != epoch->policy->programKey;
        if (stale) {
            inform("CheckService: tenant '%s' snapshot is stale "
                   "(policy %016llx, epoch %llu runs %016llx); "
                   "discarding and starting the new epoch cold",
                   t.name.c_str(),
                   static_cast<unsigned long long>(snapshotKey),
                   static_cast<unsigned long long>(epoch->epoch),
                   static_cast<unsigned long long>(
                       epoch->policy->programKey));
            // Fail closed to the *new* epoch: the fresh checker built
            // above is already the one to serve from. The frozen
            // counters described the retired chain; drop them too.
            t.frozenStats = {};
            _epochs.countStaleSnapshotDiscard();
            if (shard.tracer)
                shard.tracer->record(obs::EventKind::TenantRestore, 0,
                                     0, 0, 0);
        } else if (ok &&
                   lifecycle::restoreSnapshot(bytes, t.name,
                                              epoch->policy->programKey,
                                              t.opts.filterCopies,
                                              *t.checker, &error)) {
            _restores.fetch_add(1, std::memory_order_relaxed);
            _snapshotBytesRead.fetch_add(bytes.size(),
                                         std::memory_order_relaxed);
            if (shard.tracer)
                shard.tracer->record(obs::EventKind::TenantRestore, 0, 0,
                                     0, bytes.size());
        } else {
            // Fail closed: a damaged snapshot never yields a wrong
            // verdict — the tenant restarts from its profile with a
            // cold VAT, and the failure is counted and logged.
            warn("CheckService: tenant '%s' snapshot restore failed "
                 "(%s); rebuilding from profile", t.name.c_str(),
                 error.c_str());
            t.checker = std::make_unique<core::DracoSoftwareChecker>(
                epoch->policy, t.opts.filterCopies);
            _restoreFailures.fetch_add(1, std::memory_order_relaxed);
            if (shard.tracer)
                shard.tracer->record(obs::EventKind::TenantRestore, 0, 0,
                                     0, 0);
        }
        _store->remove(t.name);
        t.hasSnapshot = false;
        _snapshotted.fetch_sub(1, std::memory_order_relaxed);
    }

    if (_shardResidentCap)
        shard.lru.touch(t.id);
}

void
CheckService::enforceResidentCap(Shard &shard)
{
    while (shard.lru.size() > _shardResidentCap) {
        TenantId victimId = shard.lru.coldest();
        if (victimId == kInvalidTenant)
            break;
        shard.lru.erase(victimId);
        TenantState *victim = tenant(victimId);
        if (!victim || !victim->checker)
            continue;

        std::vector<uint8_t> bytes = lifecycle::encodeSnapshot(
            victim->name, *victim->checker, victim->opts.filterCopies);
        if (!_store || !_store->put(victim->name, bytes)) {
            // Keep the victim resident rather than drop state we could
            // not persist; re-touch it hottest so the next pass tries a
            // different victim first.
            _snapshotPutFailures.fetch_add(1, std::memory_order_relaxed);
            shard.lru.touch(victimId);
            warn("CheckService: snapshot put failed for tenant '%s'; "
                 "keeping resident", victim->name.c_str());
            break;
        }

        victim->frozenStats = victim->checker->stats();
        victim->checker.reset();
        victim->hasSnapshot = true;
        _snapshotted.fetch_add(1, std::memory_order_relaxed);
        _evictions.fetch_add(1, std::memory_order_relaxed);
        _snapshotBytesWritten.fetch_add(bytes.size(),
                                        std::memory_order_relaxed);
        if (shard.tracer)
            shard.tracer->record(obs::EventKind::TenantSnapshot, 0, 0, 0,
                                 bytes.size());
    }
    shard.resident.store(static_cast<uint32_t>(shard.lru.size()),
                         std::memory_order_relaxed);
}

void
CheckService::stop()
{
    if (_stopping.exchange(true))
        return;
    for (auto &shard : _shards) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        shard->wake.notify_all();
    }
    _pool.shutdown();

    // Deterministic teardown: with the workers joined, release the
    // remaining checkers in ascending tenant-id order so destruction
    // (and anything it traces) is reproducible run to run.
    uint32_t count = _tenantCount.load(std::memory_order_acquire);
    for (uint32_t i = 0; i < count; ++i) {
        TenantState *t = _tenants[i].get();
        if (t && t->checker)
            t->checker.reset();
    }
}

uint64_t
CheckService::totalChecks() const
{
    uint64_t total = 0;
    for (const auto &shard : _shards)
        total += shard->processed;
    return total;
}

uint64_t
CheckService::totalRejects() const
{
    uint64_t total = 0;
    for (const auto &shard : _shards)
        total += shard->rejects.load();
    return total;
}

double
CheckService::maxShardBusyNs() const
{
    double ns = 0.0;
    for (const auto &shard : _shards)
        ns = std::max(ns, shard->busyNs);
    return ns;
}

uint32_t
CheckService::residentTenants() const
{
    if (!lifecycleEnabled()) {
        // Without a cap every non-evicted tenant holds its checker.
        uint32_t resident = 0;
        uint32_t count = _tenantCount.load(std::memory_order_acquire);
        for (uint32_t i = 0; i < count; ++i) {
            const TenantState *t = _tenants[i].get();
            if (t && !t->evicted.load())
                ++resident;
        }
        return resident;
    }
    uint32_t resident = 0;
    for (const auto &shard : _shards)
        resident += shard->resident.load(std::memory_order_relaxed);
    return resident;
}

void
CheckService::serviceStats(ServiceStatsSnapshot &out) const
{
    out.tenants = _tenantCount.load(std::memory_order_acquire);
    out.resident = residentTenants();
    out.snapshotted = _snapshotted.load(std::memory_order_relaxed);
    out.evictions = _evictions.load(std::memory_order_relaxed);
    out.restores = _restores.load(std::memory_order_relaxed);
    out.restoreFailures =
        _restoreFailures.load(std::memory_order_relaxed);
    out.snapshotPutFailures =
        _snapshotPutFailures.load(std::memory_order_relaxed);
    out.dedupPolicies = _epochs.store().size();
    out.dedupHits = _epochs.store().hits();
    out.snapshotBytesWritten =
        _snapshotBytesWritten.load(std::memory_order_relaxed);
    out.snapshotBytesRead =
        _snapshotBytesRead.load(std::memory_order_relaxed);
    out.storeBytes = _store ? _store->totalBytes() : 0;
    out.checks = 0;
    for (const auto &shard : _shards)
        out.checks += shard->processedMirror.load(
            std::memory_order_relaxed);
    out.rejects = totalRejects();
    out.policySwaps = _epochs.swaps();
    out.policySwapFailures = _epochs.swapFailures();
    out.staleSnapshotDiscards = _epochs.staleSnapshotDiscards();
    out.maxEpoch = _epochs.maxEpoch();
}

void
CheckService::exportMetrics(MetricRegistry &registry,
                            const std::string &prefix) const
{
    auto name = [&](const std::string &metric) {
        return MetricRegistry::join(prefix, metric);
    };

    uint64_t checks = 0;
    uint64_t drains = 0;
    uint64_t queueFull = 0;
    uint64_t rejects = 0;
    double busyTotal = 0.0;
    RunningStat batchStat;
    RunningStat depthStat;

    for (size_t i = 0; i < _shards.size(); ++i) {
        const Shard &shard = *_shards[i];
        checks += shard.processed;
        drains += shard.drains;
        queueFull += shard.queueFullRejects;
        rejects += shard.rejects.load();
        busyTotal += shard.busyNs;
        batchStat.merge(shard.batchStat);
        depthStat.merge(shard.depthStat);

        std::string sp = name("shards.s" + std::to_string(i));
        registry.setCounter(sp + ".checks", shard.processed);
        registry.setCounter(sp + ".drains", shard.drains);
        registry.setCounter(sp + ".rejects", shard.rejects.load());
        registry.setCounter(sp + ".rejects_queue_full",
                            shard.queueFullRejects);
        registry.setCounter(sp + ".peak_depth", shard.peakDepth);
        registry.setGauge(sp + ".busy_ns", shard.busyNs);
    }

    registry.setCounter(name("shard_count"), _shards.size());
    registry.setCounter(name("queue_capacity"), _options.queueCapacity);
    registry.setCounter(name("max_batch"), _options.maxBatch);
    registry.setCounter(name("checks"), checks);
    registry.setCounter(name("drains"), drains);
    registry.setCounter(name("rejects.total"), rejects);
    registry.setCounter(name("rejects.queue_full"), queueFull);
    registry.setCounter(name("rejects.tenant_cap"),
                        rejects >= queueFull ? rejects - queueFull : 0);
    registry.setStat(name("batch_size"), batchStat);
    registry.setStat(name("queue_depth"), depthStat);
    double busyMax = maxShardBusyNs();
    registry.setGauge(name("busy_ns.total"), busyTotal);
    registry.setGauge(name("busy_ns.max"), busyMax);
    registry.setGauge(name("modeled_qps"),
                      busyMax > 0.0
                          ? static_cast<double>(checks) / busyMax * 1e9
                          : 0.0);

    uint32_t count = _tenantCount.load(std::memory_order_acquire);
    registry.setCounter(name("tenants.count"), count);
    uint32_t exported = std::min(count, _options.tenantMetricsLimit);
    registry.setCounter(name("tenants.exported"), exported);
    for (uint32_t i = 0; i < exported; ++i) {
        const TenantState *t = _tenants[i].get();
        if (!t)
            continue;
        std::string tp =
            name("tenants." + MetricRegistry::sanitize(t->name));
        registry.setCounter(tp + ".id", t->id);
        registry.setCounter(tp + ".shard", t->shard);
        registry.setCounter(tp + ".allowed", t->allowed);
        registry.setCounter(tp + ".denied", t->denied);
        registry.setCounter(tp + ".rejects", t->rejects.load());
        registry.setCounter(tp + ".evicted", t->evicted.load() ? 1 : 0);
        registry.setCounter(tp + ".epoch", t->epochs.epoch());
        registry.setCounter(tp + ".swaps", t->swaps);
        registry.setGauge(tp + ".busy_ns", t->busyNs);
        if (t->checker)
            core::exportStats(t->checker->stats(), registry,
                              tp + ".check");
        else if (t->hasSnapshot)
            core::exportStats(t->frozenStats, registry, tp + ".check");
    }

    std::string lp = name("lifecycle");
    registry.setCounter(lp + ".enabled", lifecycleEnabled() ? 1 : 0);
    registry.setCounter(lp + ".resident_cap",
                        _options.maxResidentTenants);
    registry.setCounter(lp + ".resident", residentTenants());
    registry.setCounter(lp + ".snapshotted",
                        _snapshotted.load(std::memory_order_relaxed));
    registry.setCounter(lp + ".evictions",
                        _evictions.load(std::memory_order_relaxed));
    registry.setCounter(lp + ".restores",
                        _restores.load(std::memory_order_relaxed));
    registry.setCounter(
        lp + ".restore_failures",
        _restoreFailures.load(std::memory_order_relaxed));
    registry.setCounter(
        lp + ".snapshot_put_failures",
        _snapshotPutFailures.load(std::memory_order_relaxed));
    registry.setCounter(
        lp + ".snapshot_bytes_written",
        _snapshotBytesWritten.load(std::memory_order_relaxed));
    registry.setCounter(
        lp + ".snapshot_bytes_read",
        _snapshotBytesRead.load(std::memory_order_relaxed));
    if (_store) {
        registry.setCounter(lp + ".store_bytes", _store->totalBytes());
        registry.setText(lp + ".store_kind", _store->kind());
    }
    _epochs.store().exportMetrics(registry, lp + ".dedup");
    registry.setGauge(lp + ".dedup.ratio",
                      _epochs.store().size() > 0
                          ? static_cast<double>(count) /
                                static_cast<double>(
                                    _epochs.store().size())
                          : 0.0);

    _epochs.exportMetrics(registry, name("policy"));
}

void
CheckService::exportLiveMetrics(MetricRegistry &registry,
                                const std::string &prefix) const
{
    auto name = [&](const std::string &metric) {
        return MetricRegistry::join(prefix, metric);
    };

    uint64_t checks = 0;
    uint64_t rejects = 0;
    double busyMax = 0.0;
    for (size_t i = 0; i < _shards.size(); ++i) {
        const Shard &shard = *_shards[i];
        const uint64_t shardChecks =
            shard.processedMirror.load(std::memory_order_relaxed);
        const uint64_t shardRejects =
            shard.rejects.load(std::memory_order_relaxed);
        const double shardBusy =
            shard.busyNsMirror.load(std::memory_order_relaxed);
        checks += shardChecks;
        rejects += shardRejects;
        busyMax = std::max(busyMax, shardBusy);

        std::string sp = name("shards.s" + std::to_string(i));
        registry.setCounter(sp + ".checks", shardChecks);
        registry.setCounter(sp + ".rejects", shardRejects);
        registry.setGauge(sp + ".queue_depth",
                          shard.depth.load(std::memory_order_relaxed));
        registry.setGauge(
            sp + ".last_batch",
            shard.lastBatch.load(std::memory_order_relaxed));
        registry.setGauge(
            sp + ".resident",
            shard.resident.load(std::memory_order_relaxed));
        registry.setGauge(sp + ".busy_ns", shardBusy);
        registry.setGauge(
            sp + ".ewma_check_ns",
            shard.ewmaCheckNs.load(std::memory_order_relaxed));
    }

    registry.setCounter(name("shard_count"), _shards.size());
    registry.setCounter(name("checks"), checks);
    registry.setCounter(name("rejects"), rejects);
    registry.setGauge(name("busy_ns.max"), busyMax);
    registry.setGauge(name("modeled_qps"),
                      busyMax > 0.0
                          ? static_cast<double>(checks) / busyMax * 1e9
                          : 0.0);

    ServiceStatsSnapshot svc;
    serviceStats(svc);
    std::string vp = name("service");
    registry.setCounter(vp + ".tenants", svc.tenants);
    registry.setCounter(vp + ".resident", svc.resident);
    registry.setCounter(vp + ".snapshotted", svc.snapshotted);
    registry.setCounter(vp + ".evictions", svc.evictions);
    registry.setCounter(vp + ".restores", svc.restores);
    registry.setCounter(vp + ".restore_failures", svc.restoreFailures);
    registry.setCounter(vp + ".snapshot_put_failures",
                        svc.snapshotPutFailures);
    registry.setCounter(vp + ".dedup_policies", svc.dedupPolicies);
    registry.setCounter(vp + ".dedup_hits", svc.dedupHits);
    registry.setCounter(vp + ".snapshot_bytes_written",
                        svc.snapshotBytesWritten);
    registry.setCounter(vp + ".snapshot_bytes_read",
                        svc.snapshotBytesRead);
    registry.setCounter(vp + ".store_bytes", svc.storeBytes);

    // All-atomic, so the live scrape may export the swap plane too.
    _epochs.exportMetrics(registry, name("policy"));
}

} // namespace draco::serve
