/**
 * @file
 * The dracod wire protocol.
 *
 * Frames are a 4-byte little-endian payload length followed by the
 * payload; the first payload byte is the message type. Field encoding
 * uses the shared binio primitives: fixed-width little-endian integers
 * for ids and counts, LEB128 varints for values that are usually small
 * (PCs, arguments, retry hints), varint-length-prefixed strings for
 * names. Frames are capped at kMaxFrameBytes so a corrupt length can
 * never force a huge allocation; decoders are total — any malformed
 * payload returns false instead of crashing the daemon.
 *
 * Requests carry a client-chosen batchId that the reply echoes, so
 * clients may pipeline CheckBatch frames and match replies out of an
 * outbox rather than lock-stepping one frame at a time. Encode/decode
 * round-trips are bit-exact, which the wire tests assert.
 */

#ifndef DRACO_SERVE_WIRE_HH
#define DRACO_SERVE_WIRE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "os/seccomp_abi.hh"
#include "serve/types.hh"

namespace draco::serve::wire {

/**
 * Protocol version expected in Hello. Version 2 added the per-verdict
 * policy epoch to CheckBatchReply, the epoch/swap counters to
 * TenantStatsReply and ServiceStatsReply, and the UpdateProfile op.
 */
inline constexpr uint32_t kProtocolVersion = 2;

/** Upper bound on one frame's payload (decoder rejects beyond it). */
inline constexpr uint32_t kMaxFrameBytes = 1u << 20;

/** Requests one CheckBatch frame may carry (bounds the decoder). */
inline constexpr uint32_t kMaxBatchRequests = 8192;

/** Message type, first payload byte of every frame. */
enum class MsgType : uint8_t {
    Hello = 1,
    HelloReply = 2,
    CreateTenant = 3,
    CreateTenantReply = 4,
    CheckBatch = 5,
    CheckBatchReply = 6,
    TenantStatsReq = 7,
    TenantStatsReply = 8,
    EvictTenant = 9,
    EvictTenantReply = 10,
    Shutdown = 11,
    ShutdownReply = 12,
    ServiceStatsReq = 13,
    ServiceStatsReply = 14,
    UpdateProfile = 15,
    UpdateProfileReply = 16,
};

struct Hello {
    uint32_t version = kProtocolVersion;
};

struct HelloReply {
    uint32_t version = kProtocolVersion;
    uint32_t shards = 0;
};

struct CreateTenant {
    std::string name;
    std::string profile;       ///< Built-in catalog name.
    uint32_t maxInFlight = 0;  ///< 0 keeps the server default.
    uint8_t filterCopies = 1;
};

struct CreateTenantReply {
    TenantId tenantId = kInvalidTenant; ///< kInvalidTenant on failure.
    std::string error;                  ///< "" on success.
};

struct CheckBatch {
    uint64_t batchId = 0; ///< Echoed in the reply (pipelining).
    TenantId tenantId = kInvalidTenant;
    std::vector<os::SyscallRequest> reqs;
};

struct CheckBatchReply {
    uint64_t batchId = 0;
    std::vector<CheckResponse> resps;
};

struct TenantStatsReq {
    TenantId tenantId = kInvalidTenant;
};

struct TenantStatsReply {
    bool ok = false;
    TenantStats stats; ///< busyNs rounded to whole nanoseconds.
};

struct EvictTenant {
    TenantId tenantId = kInvalidTenant;
};

struct EvictTenantReply {
    bool ok = false;
};

// Shutdown and ShutdownReply carry no fields beyond the type byte.
// ServiceStatsReq likewise: it asks for the service-wide counters.

struct ServiceStatsReply {
    ServiceStatsSnapshot stats;
};

/**
 * Hot-swap tenantId's profile to the named built-in catalog entry.
 * Profiles cross the wire by name, like CreateTenant: the server
 * compiles (or content-shares) the new policy and its shard worker
 * publishes it at the tenant's next FIFO boundary.
 */
struct UpdateProfile {
    TenantId tenantId = kInvalidTenant;
    std::string profile; ///< Built-in catalog name of the new policy.
};

struct UpdateProfileReply {
    bool ok = false;
    uint64_t epoch = 0; ///< Epoch now serving (valid when ok).
    std::string error;  ///< "" on success.
};

/** @return The type byte of @p payload, or 0 when empty. */
MsgType peekType(const std::vector<uint8_t> &payload);

// ---- payload encoding (type byte included) ----

void encode(std::vector<uint8_t> &out, const Hello &msg);
void encode(std::vector<uint8_t> &out, const HelloReply &msg);
void encode(std::vector<uint8_t> &out, const CreateTenant &msg);
void encode(std::vector<uint8_t> &out, const CreateTenantReply &msg);
void encode(std::vector<uint8_t> &out, const CheckBatch &msg);
void encode(std::vector<uint8_t> &out, const CheckBatchReply &msg);
void encode(std::vector<uint8_t> &out, const TenantStatsReq &msg);
void encode(std::vector<uint8_t> &out, const TenantStatsReply &msg);
void encode(std::vector<uint8_t> &out, const EvictTenant &msg);
void encode(std::vector<uint8_t> &out, const EvictTenantReply &msg);
void encodeShutdown(std::vector<uint8_t> &out);
void encodeShutdownReply(std::vector<uint8_t> &out);
void encodeServiceStatsReq(std::vector<uint8_t> &out);
void encode(std::vector<uint8_t> &out, const ServiceStatsReply &msg);
void encode(std::vector<uint8_t> &out, const UpdateProfile &msg);
void encode(std::vector<uint8_t> &out, const UpdateProfileReply &msg);

// ---- payload decoding (false on any malformation) ----

bool decode(const std::vector<uint8_t> &payload, Hello &out);
bool decode(const std::vector<uint8_t> &payload, HelloReply &out);
bool decode(const std::vector<uint8_t> &payload, CreateTenant &out);
bool decode(const std::vector<uint8_t> &payload, CreateTenantReply &out);
bool decode(const std::vector<uint8_t> &payload, CheckBatch &out);
bool decode(const std::vector<uint8_t> &payload, CheckBatchReply &out);
bool decode(const std::vector<uint8_t> &payload, TenantStatsReq &out);
bool decode(const std::vector<uint8_t> &payload, TenantStatsReply &out);
bool decode(const std::vector<uint8_t> &payload, EvictTenant &out);
bool decode(const std::vector<uint8_t> &payload, EvictTenantReply &out);
bool decode(const std::vector<uint8_t> &payload, ServiceStatsReply &out);
bool decode(const std::vector<uint8_t> &payload, UpdateProfile &out);
bool decode(const std::vector<uint8_t> &payload, UpdateProfileReply &out);

// ---- frame I/O on a connected stream socket ----

/**
 * Write one length-prefixed frame, retrying short writes and EINTR.
 *
 * @return false on I/O error or oversized payload.
 */
bool writeFrame(int fd, const std::vector<uint8_t> &payload);

/**
 * Read one frame into @p payload.
 *
 * @return false on EOF, I/O error, or an over-limit length prefix.
 */
bool readFrame(int fd, std::vector<uint8_t> &payload);

/**
 * Append the framed form of @p payload (length prefix + bytes) to
 * @p stream — the buffer-building counterpart of writeFrame() for
 * non-blocking writers that stage output and flush when the socket is
 * ready.
 *
 * @return false (stream untouched) on an oversized payload.
 */
bool appendFrame(std::vector<uint8_t> &stream,
                 const std::vector<uint8_t> &payload);

/**
 * Incremental frame splitter for non-blocking readers.
 *
 * Feed whatever bytes arrived with append(); next() peels complete
 * frames off the front. A forged over-limit length prefix poisons the
 * parser (corrupt() stays true; next() returns Corrupt) before any
 * payload-sized allocation happens. Consumed bytes are compacted away
 * lazily, so buffering stays O(one frame + one read chunk).
 */
class FrameParser
{
  public:
    enum class Result : uint8_t {
        Frame,   ///< @p payload holds the next complete frame.
        Need,    ///< No complete frame buffered yet.
        Corrupt, ///< Over-limit length prefix; the stream is dead.
    };

    /** Buffer @p n incoming bytes. */
    void append(const uint8_t *data, size_t n);

    /** Extract the next frame into @p payload, if one is complete. */
    Result next(std::vector<uint8_t> &payload);

    /** @return true once an over-limit length prefix was seen. */
    bool corrupt() const { return _corrupt; }

    /** @return Bytes buffered and not yet consumed. */
    size_t buffered() const { return _buf.size() - _pos; }

  private:
    std::vector<uint8_t> _buf;
    size_t _pos = 0;
    bool _corrupt = false;
};

} // namespace draco::serve::wire

#endif // DRACO_SERVE_WIRE_HH
