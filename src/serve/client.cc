#include "serve/client.hh"

#include "seccomp/profiles_builtin.hh"
#include "support/logging.hh"

namespace draco::serve {

std::optional<seccomp::Profile>
builtinProfileByName(const std::string &name)
{
    if (name == "insecure")
        return seccomp::insecureProfile();
    if (name == "docker-default")
        return seccomp::dockerDefaultProfile();
    if (name == "gvisor")
        return seccomp::gvisorProfile();
    if (name == "firecracker")
        return seccomp::firecrackerProfile();
    return std::nullopt;
}

const std::vector<std::string> &
builtinProfileNames()
{
    static const std::vector<std::string> names = {
        "insecure", "docker-default", "gvisor", "firecracker"};
    return names;
}

TenantId
LocalClient::createTenant(const std::string &name,
                          const std::string &profileName,
                          const TenantOptions &options)
{
    std::optional<seccomp::Profile> profile =
        builtinProfileByName(profileName);
    if (!profile) {
        warn("LocalClient: unknown profile '%s'", profileName.c_str());
        return kInvalidTenant;
    }
    return _service.createTenant(name, *profile, options);
}

bool
LocalClient::checkBatch(TenantId id, const os::SyscallRequest *reqs,
                        uint32_t count, CheckResponse *resps)
{
    Batch batch;
    _service.submitBatch(id, reqs, count, resps, batch);
    batch.wait();
    return true;
}

bool
LocalClient::tenantStats(TenantId id, TenantStats &out)
{
    return _service.tenantStats(id, out);
}

bool
LocalClient::evictTenant(TenantId id)
{
    return _service.evictTenant(id);
}

bool
LocalClient::updateProfile(TenantId id, const std::string &profileName,
                           uint64_t *epochOut)
{
    std::optional<seccomp::Profile> profile =
        builtinProfileByName(profileName);
    if (!profile) {
        warn("LocalClient: unknown profile '%s'", profileName.c_str());
        return false;
    }
    return _service.swapProfile(id, *profile, epochOut);
}

bool
LocalClient::serviceStats(ServiceStatsSnapshot &out)
{
    _service.serviceStats(out);
    return true;
}

} // namespace draco::serve
