#include "serve/transport.hh"

#include <cerrno>
#include <cstring>

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "support/logging.hh"

namespace draco::serve {

namespace {

/** Fill @p addr with @p path; false when it does not fit sun_path. */
bool
makeUnixAddress(const std::string &path, sockaddr_un &addr)
{
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path))
        return false;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return true;
}

int
listenUnix(const std::string &path, int backlog)
{
    sockaddr_un addr;
    if (!makeUnixAddress(path, addr)) {
        warn("serve: socket path too long: %s", path.c_str());
        return -1;
    }
    int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
        warn("serve: socket(): %s", std::strerror(errno));
        return -1;
    }
    ::unlink(path.c_str());
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) < 0 ||
        ::listen(fd, backlog) < 0) {
        warn("serve: bind/listen %s: %s", path.c_str(),
             std::strerror(errno));
        ::close(fd);
        return -1;
    }
    return fd;
}

int
connectUnix(const std::string &path)
{
    sockaddr_un addr;
    if (!makeUnixAddress(path, addr)) {
        warn("serve: socket path too long: %s", path.c_str());
        return -1;
    }
    int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
        warn("serve: socket(): %s", std::strerror(errno));
        return -1;
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        warn("serve: connect %s: %s", path.c_str(), std::strerror(errno));
        ::close(fd);
        return -1;
    }
    return fd;
}

/** Resolve @p host:@p port; @p passive for listeners. */
addrinfo *
resolve(const std::string &host, uint16_t port, bool passive)
{
    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    hints.ai_flags = passive ? AI_PASSIVE : 0;
    addrinfo *result = nullptr;
    int rc = ::getaddrinfo(host.c_str(), std::to_string(port).c_str(),
                           &hints, &result);
    if (rc != 0) {
        warn("serve: resolve %s:%u: %s", host.c_str(), port,
             gai_strerror(rc));
        return nullptr;
    }
    return result;
}

int
listenTcp(const std::string &host, uint16_t port, int backlog)
{
    addrinfo *addrs = resolve(host, port, true);
    if (!addrs)
        return -1;
    int fd = -1;
    for (addrinfo *ai = addrs; ai; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype | SOCK_CLOEXEC,
                      ai->ai_protocol);
        if (fd < 0)
            continue;
        int one = 1;
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
        if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 &&
            ::listen(fd, backlog) == 0)
            break;
        ::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(addrs);
    if (fd < 0)
        warn("serve: bind/listen %s:%u: %s", host.c_str(), port,
             std::strerror(errno));
    return fd;
}

int
connectTcp(const std::string &host, uint16_t port)
{
    addrinfo *addrs = resolve(host, port, false);
    if (!addrs)
        return -1;
    int fd = -1;
    for (addrinfo *ai = addrs; ai; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype | SOCK_CLOEXEC,
                      ai->ai_protocol);
        if (fd < 0)
            continue;
        if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0)
            break;
        ::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(addrs);
    if (fd < 0) {
        warn("serve: connect %s:%u: %s", host.c_str(), port,
             std::strerror(errno));
        return -1;
    }
    setNoDelay(fd);
    return fd;
}

} // namespace

Endpoint
Endpoint::unix_(std::string path)
{
    Endpoint ep;
    ep.kind = Kind::Unix;
    ep.path = std::move(path);
    return ep;
}

std::optional<Endpoint>
Endpoint::parseTcp(const std::string &spec)
{
    // The port is everything after the last colon, so bracketless IPv6
    // hosts ("::1:7311") parse too.
    size_t colon = spec.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == spec.size())
        return std::nullopt;
    unsigned long port;
    try {
        size_t used = 0;
        port = std::stoul(spec.substr(colon + 1), &used);
        if (used != spec.size() - colon - 1)
            return std::nullopt;
    } catch (...) {
        return std::nullopt;
    }
    if (port > 65535)
        return std::nullopt;
    Endpoint ep;
    ep.kind = Kind::Tcp;
    ep.host = spec.substr(0, colon);
    ep.port = static_cast<uint16_t>(port);
    return ep;
}

std::string
Endpoint::describe() const
{
    if (kind == Kind::Unix)
        return "unix:" + path;
    return "tcp:" + host + ":" + std::to_string(port);
}

int
listenEndpoint(const Endpoint &endpoint, int backlog)
{
    return endpoint.kind == Endpoint::Kind::Unix
               ? listenUnix(endpoint.path, backlog)
               : listenTcp(endpoint.host, endpoint.port, backlog);
}

int
connectEndpoint(const Endpoint &endpoint)
{
    return endpoint.kind == Endpoint::Kind::Unix
               ? connectUnix(endpoint.path)
               : connectTcp(endpoint.host, endpoint.port);
}

uint16_t
tcpLocalPort(int fd)
{
    sockaddr_storage addr{};
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&addr), &len) != 0)
        return 0;
    if (addr.ss_family == AF_INET)
        return ntohs(reinterpret_cast<sockaddr_in *>(&addr)->sin_port);
    if (addr.ss_family == AF_INET6)
        return ntohs(reinterpret_cast<sockaddr_in6 *>(&addr)->sin6_port);
    return 0;
}

void
setNoDelay(int fd)
{
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

} // namespace draco::serve
