/**
 * @file
 * The dracod socket frontend.
 *
 * SocketServer exposes a CheckService over stream sockets — a
 * Unix-domain path, a TCP host:port, or both at once — speaking the
 * serve/wire protocol. Unlike the original thread-per-connection
 * design, the frontend is an epoll event loop: a small fixed pool of
 * loop threads owns all connections, every fd is non-blocking, and
 * each connection carries its own incremental frame parser and staged
 * output buffer. Control messages answer inline on the loop thread;
 * CheckBatch replies are produced by shard workers as batches complete
 * and handed back to the owning loop through a per-loop MPSC inbox
 * woken by an eventfd — so one connection can pipeline many batches
 * and thousands of connections cost threads only in the fixed pool.
 *
 * Connection teardown is a state machine, not a join: Open →
 * Draining → reaped. A client disconnect (EOF or half-close) stops
 * reading but keeps the connection until in-flight batches complete
 * and their replies flush; a write failure kills the whole connection
 * (reader included) immediately, discarding undeliverable output; a
 * reaped connection releases its fd and memory eagerly, so
 * long-running daemons do not leak per-disconnect resources. Server
 * stop drains every connection the same way (with a bounded grace for
 * clients that stop reading), then joins the loop pool.
 *
 * SocketClient is the lock-step counterpart: one outstanding request
 * at a time, so the next frame on the wire is always the awaited
 * reply. Open-loop load generation bypasses it and pipelines raw
 * frames (see tools/dracoload.cc).
 */

#ifndef DRACO_SERVE_SERVER_HH
#define DRACO_SERVE_SERVER_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.hh"
#include "serve/service.hh"
#include "serve/transport.hh"
#include "serve/wire.hh"
#include "support/epoll.hh"

namespace draco::obs {
class ServeObs;
} // namespace draco::obs

namespace draco::serve {

/** Frontend configuration for one SocketServer. */
struct ServerOptions {
    /** Unix-domain socket path; "" disables the Unix listener. */
    std::string socketPath;

    /** TCP "host:port" to listen on; "" disables the TCP listener. */
    std::string tcpAddress;

    /** Event-loop threads; connections spread round-robin. */
    unsigned eventThreads = 2;

    /** listen(2) backlog for both listeners. */
    int backlog = 128;

    /**
     * Staged-output cap per connection. A client that stops reading
     * while replies accumulate beyond this is treated as dead (the
     * connection is torn down, output discarded) so one stalled peer
     * cannot pin unbounded memory.
     */
    size_t maxOutputBytes = 16u << 20;

    /**
     * After stop(), draining connections get this long to accept
     * their remaining replies before undeliverable output is dropped;
     * keeps shutdown bounded when a client never reads.
     */
    unsigned drainGraceMs = 5000;

    /**
     * TCP "host:port" for the observability endpoint ("" disables).
     * When set, the server owns an obs::ServeObs: every CheckBatch is
     * latency-stamped through the pipeline, and HTTP/1.0 GETs on this
     * listener serve /metrics (Prometheus text), /healthz, /statz
     * (ServiceStats JSON), and /slowz (the slow-request ring).
     */
    std::string metricsAddress;

    /**
     * Slow-request capture threshold in microseconds; batches whose
     * admit→flush latency meets it land in the /slowz ring. 0 disables
     * capture (the ring stays empty). Only meaningful with
     * metricsAddress set.
     */
    uint32_t slowUs = 0;

    /** Slow-request ring capacity (newest records kept). */
    size_t slowCapacity = 256;
};

/**
 * Wire-protocol server for one CheckService (see file comment).
 */
class SocketServer
{
  public:
    /**
     * @param service Backing service (not owned, must outlive this).
     * @param options Listener endpoints and event-loop knobs; at
     *        least one of socketPath / tcpAddress must be set.
     */
    SocketServer(CheckService &service, ServerOptions options);

    /** Unix-socket-only convenience constructor. */
    SocketServer(CheckService &service, std::string socketPath);

    /** Calls stop(). */
    ~SocketServer();

    SocketServer(const SocketServer &) = delete;
    SocketServer &operator=(const SocketServer &) = delete;

    /**
     * Bind the configured listeners and start the event-loop pool.
     *
     * @return false (with a warning) when no listener could be bound.
     */
    bool start();

    /** Block until a Shutdown frame or requestStop() stops the server. */
    void wait();

    /** Begin shutdown from any thread; idempotent. */
    void requestStop();

    /** Stop, drain connections, and join the pool; idempotent. */
    void stop();

    /** @return true once shutdown has begun. */
    bool stopRequested() const { return _stop.load(); }

    /** @return Connections accepted over the server's lifetime. */
    uint64_t connectionsAccepted() const { return _accepted.load(); }

    /** @return Connections fully torn down (fd closed, state freed). */
    uint64_t connectionsReaped() const { return _reaped.load(); }

    /** @return Connections currently alive (accepted − reaped). */
    uint32_t activeConnections() const { return _active.load(); }

    /**
     * @return The bound TCP port (useful with a ":0" tcpAddress), or
     *         0 when no TCP listener is configured.
     */
    uint16_t tcpPort() const { return _tcpPort; }

    /**
     * @return The bound observability port (useful with ":0"), or 0
     *         when no metricsAddress is configured.
     */
    uint16_t metricsPort() const { return _metricsPort; }

    /**
     * @return The observability hub, or nullptr when metricsAddress
     *         is not configured. Valid until stop().
     */
    obs::ServeObs *serveObs() const { return _obs.get(); }

    const std::string &socketPath() const
    {
        return _options.socketPath;
    }

    const ServerOptions &options() const { return _options; }

  private:
    /** Connection lifecycle (loop-thread-only). */
    enum class ConnState : uint8_t {
        Open,     ///< Reading frames, writing replies.
        Draining, ///< Read side closed; flush in-flight, then reap.
    };

    /*
     * Conn is one accepted connection; Loop is one event-loop thread
     * plus its epoll set, eventfd, MPSC inbox of completed-batch
     * replies, and adoption queue of freshly accepted connections.
     * After adoption every Conn field is owned by its loop thread;
     * shard workers never touch a Conn — completed batches travel
     * through the loop's inbox, and the conn pointer they carry stays
     * valid because a connection is only reaped once its in-flight
     * count (decremented exclusively by the loop while pumping that
     * inbox) reaches zero. Both are defined in server.cc.
     */
    struct Conn;
    struct Loop;

    void loopMain(size_t index);
    void acceptReady(int listenFd, bool tcp, bool http = false);
    void adoptPending(Loop &loop, bool stopping);
    void pumpReplies(Loop &loop);
    void readInput(Loop &loop, Conn *conn, std::vector<uint8_t> &chunk);
    void readHttp(Loop &loop, Conn *conn, std::vector<uint8_t> &chunk);
    void handleHttp(Loop &loop, Conn *conn);
    std::string metricsBody() const;
    std::string statzBody() const;
    bool parseFrames(Loop &loop, Conn *conn);
    bool handleFrame(Loop &loop, Conn *conn,
                     const std::vector<uint8_t> &payload);
    void appendOutput(Conn *conn, const uint8_t *data, size_t size);
    void flushOutput(Loop &loop, Conn *conn);
    void commitFlushed(Loop &loop, Conn *conn);
    void dropMarks(Loop &loop, Conn *conn);
    void beginDrain(Loop &loop, Conn *conn, bool discardOutput);
    void updateInterest(Loop &loop, Conn *conn);
    void beginStopDrain(Loop &loop);
    void reapConnections(Loop &loop);
    void sendControl(Loop &loop, Conn *conn,
                     const std::vector<uint8_t> &payload);

    CheckService &_service;
    ServerOptions _options;

    int _unixListenFd = -1;
    int _tcpListenFd = -1;
    int _metricsListenFd = -1;
    uint16_t _tcpPort = 0;
    uint16_t _metricsPort = 0;
    int _unixTag = 0; ///< epoll cookie identity for the Unix listener.
    int _tcpTag = 0;  ///< epoll cookie identity for the TCP listener.
    int _metricsTag = 0; ///< epoll cookie for the metrics listener.

    /** Observability hub; non-null iff metricsAddress is configured. */
    std::unique_ptr<obs::ServeObs> _obs;

    std::vector<std::unique_ptr<Loop>> _loops;

    std::atomic<bool> _stop{false};
    std::atomic<bool> _stopped{false};
    std::atomic<uint64_t> _accepted{0};
    std::atomic<uint64_t> _reaped{0};
    std::atomic<uint32_t> _active{0};

    std::mutex _waitMutex;
    std::condition_variable _waitCv;
};

/**
 * Lock-step wire-protocol client (see file comment).
 */
class SocketClient final : public Client
{
  public:
    /**
     * Connect to the Unix socket @p socketPath and exchange Hello.
     *
     * @return nullptr (with a warning) on connect/handshake failure.
     */
    static std::unique_ptr<SocketClient>
    connect(const std::string &socketPath);

    /**
     * Connect to the TCP endpoint "host:port" and exchange Hello.
     *
     * @return nullptr (with a warning) on connect/handshake failure.
     */
    static std::unique_ptr<SocketClient>
    connectTcp(const std::string &hostPort);

    /** Connect to @p endpoint and exchange Hello. */
    static std::unique_ptr<SocketClient>
    connectTo(const Endpoint &endpoint);

    ~SocketClient() override;

    SocketClient(const SocketClient &) = delete;
    SocketClient &operator=(const SocketClient &) = delete;

    TenantId createTenant(const std::string &name,
                          const std::string &profileName,
                          const TenantOptions &options = {}) override;

    bool checkBatch(TenantId id, const os::SyscallRequest *reqs,
                    uint32_t count, CheckResponse *resps) override;

    bool tenantStats(TenantId id, TenantStats &out) override;

    bool evictTenant(TenantId id) override;

    bool updateProfile(TenantId id, const std::string &profileName,
                       uint64_t *epochOut = nullptr) override;

    bool serviceStats(ServiceStatsSnapshot &out) override;

    /** Ask the daemon to shut down. @return false on transport error. */
    bool shutdownServer();

    /** @return Shard count the server reported at Hello. */
    uint32_t serverShards() const { return _serverShards; }

    /** @return The connected socket fd (open-loop raw-frame access). */
    int fd() const { return _fd; }

  private:
    explicit SocketClient(int fd) : _fd(fd) {}

    /** Send @p request and read the next frame into @p reply. */
    bool roundTrip(const std::vector<uint8_t> &request,
                   std::vector<uint8_t> &reply);

    int _fd;
    uint32_t _serverShards = 0;
    uint64_t _nextBatchId = 1;
};

} // namespace draco::serve

#endif // DRACO_SERVE_SERVER_HH
