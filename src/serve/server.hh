/**
 * @file
 * The dracod socket frontend.
 *
 * SocketServer exposes a CheckService over a Unix-domain stream socket
 * speaking the serve/wire protocol. Each accepted connection gets a
 * reader thread (decodes frames, handles control messages inline,
 * submits CheckBatch work to the service) and a writer thread draining
 * a per-connection outbox — so check replies are enqueued by shard
 * workers as batches complete and a connection can keep many batches in
 * flight (open-loop pipelining) without any thread lock-stepping on the
 * slowest one. A Shutdown frame (or requestStop()) stops the daemon:
 * the listener closes, in-flight batches drain, replies flush, and
 * wait() returns.
 *
 * SocketClient is the lock-step counterpart: one outstanding request at
 * a time, so the next frame on the wire is always the awaited reply.
 * Open-loop load generation bypasses it and pipelines raw frames (see
 * tools/dracoload.cc).
 */

#ifndef DRACO_SERVE_SERVER_HH
#define DRACO_SERVE_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <deque>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.hh"
#include "serve/service.hh"
#include "serve/wire.hh"

namespace draco::serve {

/**
 * Wire-protocol server for one CheckService (see file comment).
 */
class SocketServer
{
  public:
    /**
     * @param service Backing service (not owned, must outlive this).
     * @param socketPath Filesystem path to bind (unlinked first).
     */
    SocketServer(CheckService &service, std::string socketPath);

    /** Calls stop(). */
    ~SocketServer();

    SocketServer(const SocketServer &) = delete;
    SocketServer &operator=(const SocketServer &) = delete;

    /**
     * Bind, listen, and start accepting.
     *
     * @return false (with a warning) when the socket cannot be bound.
     */
    bool start();

    /** Block until a Shutdown frame or requestStop() stops the server. */
    void wait();

    /** Begin shutdown from any thread; idempotent. */
    void requestStop();

    /** Stop and join everything; idempotent. wait() returns after. */
    void stop();

    /** @return true once shutdown has begun. */
    bool stopRequested() const { return _stop.load(); }

    /** @return Connections accepted over the server's lifetime. */
    uint64_t connectionsAccepted() const
    {
        return _accepted.load();
    }

    const std::string &socketPath() const { return _socketPath; }

  private:
    struct Connection {
        int fd = -1;
        std::thread reader;
        std::thread writer;

        std::mutex mutex;
        std::condition_variable wake;
        std::deque<std::vector<uint8_t>> outbox;
        bool closing = false;      ///< Writer exits once outbox drains.
        bool writeFailed = false;

        /** CheckBatch submits whose completion has not enqueued yet. */
        std::atomic<uint32_t> inflight{0};
    };

    void acceptLoop();
    void readerLoop(Connection *conn);
    void writerLoop(Connection *conn);
    void sendFrame(Connection *conn, std::vector<uint8_t> payload);
    bool handleFrame(Connection *conn,
                     const std::vector<uint8_t> &payload);

    CheckService &_service;
    std::string _socketPath;
    int _listenFd = -1;
    std::thread _acceptThread;
    std::atomic<bool> _stop{false};
    std::atomic<bool> _stopped{false};
    std::atomic<uint64_t> _accepted{0};

    std::mutex _connMutex;
    std::list<std::unique_ptr<Connection>> _connections;

    std::mutex _waitMutex;
    std::condition_variable _waitCv;
};

/**
 * Lock-step wire-protocol client (see file comment).
 */
class SocketClient final : public Client
{
  public:
    /**
     * Connect to @p socketPath and exchange Hello.
     *
     * @return nullptr (with a warning) on connect/handshake failure.
     */
    static std::unique_ptr<SocketClient>
    connect(const std::string &socketPath);

    ~SocketClient() override;

    SocketClient(const SocketClient &) = delete;
    SocketClient &operator=(const SocketClient &) = delete;

    TenantId createTenant(const std::string &name,
                          const std::string &profileName,
                          const TenantOptions &options = {}) override;

    bool checkBatch(TenantId id, const os::SyscallRequest *reqs,
                    uint32_t count, CheckResponse *resps) override;

    bool tenantStats(TenantId id, TenantStats &out) override;

    bool evictTenant(TenantId id) override;

    /** Ask the daemon to shut down. @return false on transport error. */
    bool shutdownServer();

    /** @return Shard count the server reported at Hello. */
    uint32_t serverShards() const { return _serverShards; }

    /** @return The connected socket fd (open-loop raw-frame access). */
    int fd() const { return _fd; }

  private:
    explicit SocketClient(int fd) : _fd(fd) {}

    /** Send @p request and read the next frame into @p reply. */
    bool roundTrip(const std::vector<uint8_t> &request,
                   std::vector<uint8_t> &reply);

    int _fd;
    uint32_t _serverShards = 0;
    uint64_t _nextBatchId = 1;
};

} // namespace draco::serve

#endif // DRACO_SERVE_SERVER_HH
