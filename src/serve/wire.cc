#include "serve/wire.hh"

#include <cerrno>
#include <cstring>
#include <sys/socket.h>
#include <unistd.h>

#include "support/binio.hh"

namespace draco::serve::wire {

using binio::putString;
using binio::putU16;
using binio::putU32;
using binio::putU64;
using binio::putU8;
using binio::putVarint;
using binio::takeString;
using binio::takeU16;
using binio::takeU32;
using binio::takeU64;
using binio::takeU8;
using binio::takeVarint;

namespace {

/**
 * Smallest possible encodings of one batch element, used to reject a
 * forged count before the element array is allocated: a request is a
 * u16 sid, a >=1-byte pc varint, and six >=1-byte arg varints; a
 * response is status, path, a >=1-byte retry varint, and a >=1-byte
 * epoch varint.
 */
constexpr size_t kMinRequestBytes = 2 + 1 + 6;
constexpr size_t kMinResponseBytes = 1 + 1 + 1 + 1;

/** @return true when @p count elements of @p minBytes can still fit. */
bool
countFits(const std::vector<uint8_t> &payload, size_t pos,
          uint32_t count, size_t minBytes)
{
    return pos <= payload.size() &&
           static_cast<uint64_t>(count) * minBytes <=
               payload.size() - pos;
}

void
putType(std::vector<uint8_t> &out, MsgType type)
{
    putU8(out, static_cast<uint8_t>(type));
}

bool
takeType(const std::vector<uint8_t> &payload, size_t &pos, MsgType want)
{
    uint8_t type;
    return takeU8(payload, pos, type) &&
           type == static_cast<uint8_t>(want);
}

} // namespace

MsgType
peekType(const std::vector<uint8_t> &payload)
{
    return payload.empty() ? static_cast<MsgType>(0)
                           : static_cast<MsgType>(payload[0]);
}

// ---- Hello ----

void
encode(std::vector<uint8_t> &out, const Hello &msg)
{
    putType(out, MsgType::Hello);
    putU32(out, msg.version);
}

bool
decode(const std::vector<uint8_t> &payload, Hello &out)
{
    size_t pos = 0;
    return takeType(payload, pos, MsgType::Hello) &&
           takeU32(payload, pos, out.version) && pos == payload.size();
}

void
encode(std::vector<uint8_t> &out, const HelloReply &msg)
{
    putType(out, MsgType::HelloReply);
    putU32(out, msg.version);
    putU32(out, msg.shards);
}

bool
decode(const std::vector<uint8_t> &payload, HelloReply &out)
{
    size_t pos = 0;
    return takeType(payload, pos, MsgType::HelloReply) &&
           takeU32(payload, pos, out.version) &&
           takeU32(payload, pos, out.shards) && pos == payload.size();
}

// ---- CreateTenant ----

void
encode(std::vector<uint8_t> &out, const CreateTenant &msg)
{
    putType(out, MsgType::CreateTenant);
    putString(out, msg.name);
    putString(out, msg.profile);
    putU32(out, msg.maxInFlight);
    putU8(out, msg.filterCopies);
}

bool
decode(const std::vector<uint8_t> &payload, CreateTenant &out)
{
    size_t pos = 0;
    return takeType(payload, pos, MsgType::CreateTenant) &&
           takeString(payload, pos, out.name) &&
           takeString(payload, pos, out.profile) &&
           takeU32(payload, pos, out.maxInFlight) &&
           takeU8(payload, pos, out.filterCopies) &&
           pos == payload.size();
}

void
encode(std::vector<uint8_t> &out, const CreateTenantReply &msg)
{
    putType(out, MsgType::CreateTenantReply);
    putU32(out, msg.tenantId);
    putString(out, msg.error);
}

bool
decode(const std::vector<uint8_t> &payload, CreateTenantReply &out)
{
    size_t pos = 0;
    return takeType(payload, pos, MsgType::CreateTenantReply) &&
           takeU32(payload, pos, out.tenantId) &&
           takeString(payload, pos, out.error) && pos == payload.size();
}

// ---- CheckBatch ----

void
encode(std::vector<uint8_t> &out, const CheckBatch &msg)
{
    putType(out, MsgType::CheckBatch);
    putU64(out, msg.batchId);
    putU32(out, msg.tenantId);
    putU32(out, static_cast<uint32_t>(msg.reqs.size()));
    for (const os::SyscallRequest &req : msg.reqs) {
        putU16(out, req.sid);
        putVarint(out, req.pc);
        for (uint64_t arg : req.args)
            putVarint(out, arg);
    }
}

bool
decode(const std::vector<uint8_t> &payload, CheckBatch &out)
{
    size_t pos = 0;
    uint32_t count;
    if (!takeType(payload, pos, MsgType::CheckBatch) ||
        !takeU64(payload, pos, out.batchId) ||
        !takeU32(payload, pos, out.tenantId) ||
        !takeU32(payload, pos, count) || count > kMaxBatchRequests ||
        !countFits(payload, pos, count, kMinRequestBytes)) {
        return false;
    }
    out.reqs.resize(count);
    for (os::SyscallRequest &req : out.reqs) {
        if (!takeU16(payload, pos, req.sid) ||
            !takeVarint(payload, pos, req.pc)) {
            return false;
        }
        for (uint64_t &arg : req.args)
            if (!takeVarint(payload, pos, arg))
                return false;
    }
    return pos == payload.size();
}

void
encode(std::vector<uint8_t> &out, const CheckBatchReply &msg)
{
    putType(out, MsgType::CheckBatchReply);
    putU64(out, msg.batchId);
    putU32(out, static_cast<uint32_t>(msg.resps.size()));
    for (const CheckResponse &resp : msg.resps) {
        putU8(out, static_cast<uint8_t>(resp.status));
        putU8(out, resp.path);
        putVarint(out, resp.retryAfterUs);
        putVarint(out, resp.epoch);
    }
}

bool
decode(const std::vector<uint8_t> &payload, CheckBatchReply &out)
{
    size_t pos = 0;
    uint32_t count;
    if (!takeType(payload, pos, MsgType::CheckBatchReply) ||
        !takeU64(payload, pos, out.batchId) ||
        !takeU32(payload, pos, count) || count > kMaxBatchRequests ||
        !countFits(payload, pos, count, kMinResponseBytes)) {
        return false;
    }
    out.resps.resize(count);
    for (CheckResponse &resp : out.resps) {
        uint8_t status;
        uint64_t retry;
        if (!takeU8(payload, pos, status) ||
            !takeU8(payload, pos, resp.path) ||
            !takeVarint(payload, pos, retry) ||
            !takeVarint(payload, pos, resp.epoch) ||
            status > static_cast<uint8_t>(CheckStatus::ShuttingDown) ||
            retry > UINT32_MAX) {
            return false;
        }
        resp.status = static_cast<CheckStatus>(status);
        resp.retryAfterUs = static_cast<uint32_t>(retry);
    }
    return pos == payload.size();
}

// ---- TenantStats ----

void
encode(std::vector<uint8_t> &out, const TenantStatsReq &msg)
{
    putType(out, MsgType::TenantStatsReq);
    putU32(out, msg.tenantId);
}

bool
decode(const std::vector<uint8_t> &payload, TenantStatsReq &out)
{
    size_t pos = 0;
    return takeType(payload, pos, MsgType::TenantStatsReq) &&
           takeU32(payload, pos, out.tenantId) && pos == payload.size();
}

void
encode(std::vector<uint8_t> &out, const TenantStatsReply &msg)
{
    putType(out, MsgType::TenantStatsReply);
    putU8(out, msg.ok ? 1 : 0);
    if (!msg.ok)
        return;
    const TenantStats &s = msg.stats;
    putString(out, s.name);
    putU32(out, s.id);
    putU32(out, s.shard);
    putU8(out, s.evicted ? 1 : 0);
    putU64(out, s.check.checks);
    putU64(out, s.check.sptAllowAll);
    putU64(out, s.check.vatHits);
    putU64(out, s.check.filterRuns);
    putU64(out, s.check.denials);
    putU64(out, s.check.filterInsns);
    putU64(out, s.check.vatInsertions);
    putU64(out, s.allowed);
    putU64(out, s.denied);
    putU64(out, s.rejects);
    putU64(out, static_cast<uint64_t>(s.busyNs + 0.5));
    putU64(out, s.epoch);
    putU64(out, s.swaps);
}

bool
decode(const std::vector<uint8_t> &payload, TenantStatsReply &out)
{
    size_t pos = 0;
    uint8_t ok;
    if (!takeType(payload, pos, MsgType::TenantStatsReply) ||
        !takeU8(payload, pos, ok)) {
        return false;
    }
    out.ok = ok != 0;
    if (!out.ok)
        return pos == payload.size();
    TenantStats &s = out.stats;
    uint8_t evicted;
    uint64_t busyNs;
    if (!takeString(payload, pos, s.name) ||
        !takeU32(payload, pos, s.id) ||
        !takeU32(payload, pos, s.shard) ||
        !takeU8(payload, pos, evicted) ||
        !takeU64(payload, pos, s.check.checks) ||
        !takeU64(payload, pos, s.check.sptAllowAll) ||
        !takeU64(payload, pos, s.check.vatHits) ||
        !takeU64(payload, pos, s.check.filterRuns) ||
        !takeU64(payload, pos, s.check.denials) ||
        !takeU64(payload, pos, s.check.filterInsns) ||
        !takeU64(payload, pos, s.check.vatInsertions) ||
        !takeU64(payload, pos, s.allowed) ||
        !takeU64(payload, pos, s.denied) ||
        !takeU64(payload, pos, s.rejects) ||
        !takeU64(payload, pos, busyNs) ||
        !takeU64(payload, pos, s.epoch) ||
        !takeU64(payload, pos, s.swaps)) {
        return false;
    }
    s.evicted = evicted != 0;
    s.busyNs = static_cast<double>(busyNs);
    return pos == payload.size();
}

// ---- EvictTenant ----

void
encode(std::vector<uint8_t> &out, const EvictTenant &msg)
{
    putType(out, MsgType::EvictTenant);
    putU32(out, msg.tenantId);
}

bool
decode(const std::vector<uint8_t> &payload, EvictTenant &out)
{
    size_t pos = 0;
    return takeType(payload, pos, MsgType::EvictTenant) &&
           takeU32(payload, pos, out.tenantId) && pos == payload.size();
}

void
encode(std::vector<uint8_t> &out, const EvictTenantReply &msg)
{
    putType(out, MsgType::EvictTenantReply);
    putU8(out, msg.ok ? 1 : 0);
}

bool
decode(const std::vector<uint8_t> &payload, EvictTenantReply &out)
{
    size_t pos = 0;
    uint8_t ok;
    if (!takeType(payload, pos, MsgType::EvictTenantReply) ||
        !takeU8(payload, pos, ok) || pos != payload.size()) {
        return false;
    }
    out.ok = ok != 0;
    return true;
}

// ---- Shutdown ----

void
encodeShutdown(std::vector<uint8_t> &out)
{
    putType(out, MsgType::Shutdown);
}

void
encodeShutdownReply(std::vector<uint8_t> &out)
{
    putType(out, MsgType::ShutdownReply);
}

// ---- ServiceStats ----

void
encodeServiceStatsReq(std::vector<uint8_t> &out)
{
    putType(out, MsgType::ServiceStatsReq);
}

void
encode(std::vector<uint8_t> &out, const ServiceStatsReply &msg)
{
    putType(out, MsgType::ServiceStatsReply);
    const ServiceStatsSnapshot &s = msg.stats;
    // Varints: nearly every counter is small on an idle or young
    // service, and the reply is control-plane traffic anyway.
    putVarint(out, s.tenants);
    putVarint(out, s.resident);
    putVarint(out, s.snapshotted);
    putVarint(out, s.evictions);
    putVarint(out, s.restores);
    putVarint(out, s.restoreFailures);
    putVarint(out, s.snapshotPutFailures);
    putVarint(out, s.dedupPolicies);
    putVarint(out, s.dedupHits);
    putVarint(out, s.snapshotBytesWritten);
    putVarint(out, s.snapshotBytesRead);
    putVarint(out, s.storeBytes);
    putVarint(out, s.checks);
    putVarint(out, s.rejects);
    putVarint(out, s.policySwaps);
    putVarint(out, s.policySwapFailures);
    putVarint(out, s.staleSnapshotDiscards);
    putVarint(out, s.maxEpoch);
}

bool
decode(const std::vector<uint8_t> &payload, ServiceStatsReply &out)
{
    size_t pos = 0;
    ServiceStatsSnapshot &s = out.stats;
    return takeType(payload, pos, MsgType::ServiceStatsReply) &&
           takeVarint(payload, pos, s.tenants) &&
           takeVarint(payload, pos, s.resident) &&
           takeVarint(payload, pos, s.snapshotted) &&
           takeVarint(payload, pos, s.evictions) &&
           takeVarint(payload, pos, s.restores) &&
           takeVarint(payload, pos, s.restoreFailures) &&
           takeVarint(payload, pos, s.snapshotPutFailures) &&
           takeVarint(payload, pos, s.dedupPolicies) &&
           takeVarint(payload, pos, s.dedupHits) &&
           takeVarint(payload, pos, s.snapshotBytesWritten) &&
           takeVarint(payload, pos, s.snapshotBytesRead) &&
           takeVarint(payload, pos, s.storeBytes) &&
           takeVarint(payload, pos, s.checks) &&
           takeVarint(payload, pos, s.rejects) &&
           takeVarint(payload, pos, s.policySwaps) &&
           takeVarint(payload, pos, s.policySwapFailures) &&
           takeVarint(payload, pos, s.staleSnapshotDiscards) &&
           takeVarint(payload, pos, s.maxEpoch) &&
           pos == payload.size();
}

// ---- UpdateProfile ----

void
encode(std::vector<uint8_t> &out, const UpdateProfile &msg)
{
    putType(out, MsgType::UpdateProfile);
    putU32(out, msg.tenantId);
    putString(out, msg.profile);
}

bool
decode(const std::vector<uint8_t> &payload, UpdateProfile &out)
{
    size_t pos = 0;
    return takeType(payload, pos, MsgType::UpdateProfile) &&
           takeU32(payload, pos, out.tenantId) &&
           takeString(payload, pos, out.profile) &&
           pos == payload.size();
}

void
encode(std::vector<uint8_t> &out, const UpdateProfileReply &msg)
{
    putType(out, MsgType::UpdateProfileReply);
    putU8(out, msg.ok ? 1 : 0);
    putVarint(out, msg.epoch);
    putString(out, msg.error);
}

bool
decode(const std::vector<uint8_t> &payload, UpdateProfileReply &out)
{
    size_t pos = 0;
    uint8_t ok;
    if (!takeType(payload, pos, MsgType::UpdateProfileReply) ||
        !takeU8(payload, pos, ok) ||
        !takeVarint(payload, pos, out.epoch) ||
        !takeString(payload, pos, out.error) || pos != payload.size()) {
        return false;
    }
    out.ok = ok != 0;
    return true;
}

// ---- frame I/O ----

namespace {

bool
writeAll(int fd, const uint8_t *data, size_t len)
{
    while (len > 0) {
        // MSG_NOSIGNAL: writing to a peer that half-closed must fail
        // with EPIPE, not kill the process — clients routinely race
        // their requests against a server beginning to drain.
        ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        data += n;
        len -= static_cast<size_t>(n);
    }
    return true;
}

bool
readAll(int fd, uint8_t *data, size_t len)
{
    while (len > 0) {
        ssize_t n = ::read(fd, data, len);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (n == 0)
            return false; // EOF mid-frame (or before one)
        data += n;
        len -= static_cast<size_t>(n);
    }
    return true;
}

} // namespace

bool
writeFrame(int fd, const std::vector<uint8_t> &payload)
{
    if (payload.size() > kMaxFrameBytes)
        return false;
    uint8_t header[4];
    uint32_t len = static_cast<uint32_t>(payload.size());
    for (int i = 0; i < 4; ++i)
        header[i] = static_cast<uint8_t>((len >> (8 * i)) & 0xff);
    return writeAll(fd, header, sizeof(header)) &&
           writeAll(fd, payload.data(), payload.size());
}

bool
readFrame(int fd, std::vector<uint8_t> &payload)
{
    uint8_t header[4];
    if (!readAll(fd, header, sizeof(header)))
        return false;
    uint32_t len = 0;
    for (int i = 0; i < 4; ++i)
        len |= static_cast<uint32_t>(header[i]) << (8 * i);
    if (len > kMaxFrameBytes)
        return false;
    payload.resize(len);
    return len == 0 || readAll(fd, payload.data(), len);
}

bool
appendFrame(std::vector<uint8_t> &stream,
            const std::vector<uint8_t> &payload)
{
    if (payload.size() > kMaxFrameBytes)
        return false;
    uint32_t len = static_cast<uint32_t>(payload.size());
    stream.reserve(stream.size() + 4 + payload.size());
    for (int i = 0; i < 4; ++i)
        stream.push_back(static_cast<uint8_t>((len >> (8 * i)) & 0xff));
    stream.insert(stream.end(), payload.begin(), payload.end());
    return true;
}

// ---- FrameParser ----

void
FrameParser::append(const uint8_t *data, size_t n)
{
    if (_corrupt)
        return;
    // Compact before growing so the buffer never holds more than one
    // in-progress frame plus fresh input.
    if (_pos > 0) {
        _buf.erase(_buf.begin(),
                   _buf.begin() + static_cast<ptrdiff_t>(_pos));
        _pos = 0;
    }
    _buf.insert(_buf.end(), data, data + n);
}

FrameParser::Result
FrameParser::next(std::vector<uint8_t> &payload)
{
    if (_corrupt)
        return Result::Corrupt;
    if (_buf.size() - _pos < 4)
        return Result::Need;
    uint32_t len = 0;
    for (int i = 0; i < 4; ++i)
        len |= static_cast<uint32_t>(_buf[_pos + i]) << (8 * i);
    if (len > kMaxFrameBytes) {
        _corrupt = true;
        return Result::Corrupt;
    }
    if (_buf.size() - _pos - 4 < len)
        return Result::Need;
    payload.assign(_buf.begin() + static_cast<ptrdiff_t>(_pos + 4),
                   _buf.begin() + static_cast<ptrdiff_t>(_pos + 4 + len));
    _pos += 4 + len;
    return Result::Frame;
}

} // namespace draco::serve::wire
