/**
 * @file
 * The dracod check-serving engine.
 *
 * A CheckService owns N shards, each a worker thread with a bounded
 * MPSC queue of submitted batches. Every tenant — one confined process:
 * a seccomp profile plus its private SPT/VAT state — is pinned to the
 * shard `(id - 1) % shards`, so all of a tenant's requests are checked
 * by exactly one thread, in submission order. That single-writer
 * discipline is what makes the service deterministic: per-tenant
 * verdict streams (and therefore verdict counts) are byte-identical at
 * any shard count, because VAT state is only ever mutated by the one
 * thread that owns it and sees the tenant's requests FIFO.
 *
 * Admission control is explicit and two-level. A submit first charges
 * the tenant's in-flight cap (excess is shed as Overloaded and
 * *attributed to that tenant*, so a flooder rejects its own traffic,
 * not its neighbours'), then the shard queue's request capacity (shed
 * as Overloaded with a retry-after hint derived from queue depth times
 * the shard's recent modeled per-check cost). Nothing ever blocks a
 * producer and queue memory is strictly bounded.
 *
 * Workers drain up to maxBatch requests per wakeup so queue-lock and
 * telemetry costs amortize across a batch. Each check is priced with
 * the shared §V-C cost model (core::swCheckCostNs); the accumulated
 * per-shard busy time is the service's modeled clock — it drives the
 * per-shard telemetry tracks and the modeled-QPS figures the bench
 * reports, and is deterministic on any host.
 */

#ifndef DRACO_SERVE_SERVICE_HH
#define DRACO_SERVE_SERVICE_HH

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/software.hh"
#include "lifecycle/resident_lru.hh"
#include "policy/epoch.hh"
#include "seccomp/profile.hh"
#include "serve/types.hh"
#include "support/metrics.hh"
#include "support/threadpool.hh"

namespace draco::obs {
class Tracer;
struct StageRecord;
} // namespace draco::obs

namespace draco::serve {

/**
 * Completion handle for one submitted batch of requests.
 *
 * The submitter arms it with the request count, the service completes
 * requests as they resolve (immediately for shed ones, on the shard
 * worker for checked ones), and the submitter either wait()s or
 * registers a callback to pipeline completions (the socket frontend
 * does the latter). A Batch may carry several submits before wait().
 */
class Batch
{
  public:
    Batch() = default;
    Batch(const Batch &) = delete;
    Batch &operator=(const Batch &) = delete;

    /** Block until every armed request has completed. */
    void wait();

    /** @return true when nothing armed is still outstanding. */
    bool done() const { return _outstanding.load() == 0; }

    /**
     * Register a one-shot callback invoked when the outstanding count
     * hits zero. Must be set before the triggering submit; runs on the
     * completing thread (a shard worker, or the submitter itself when
     * the whole batch was shed at admission).
     */
    void onComplete(std::function<void()> callback);

  private:
    friend class CheckService;

    void arm(uint32_t n);
    void complete(uint32_t n);

    std::atomic<uint32_t> _outstanding{0};
    mutable std::mutex _mutex;
    std::condition_variable _cv;
    std::function<void()> _callback;
};

/**
 * Multi-tenant sharded syscall-check service (see file comment).
 */
class CheckService
{
  public:
    explicit CheckService(const ServiceOptions &options = {});

    /** Calls stop(). */
    ~CheckService();

    CheckService(const CheckService &) = delete;
    CheckService &operator=(const CheckService &) = delete;

    // ---- tenant lifecycle ----

    /**
     * Create (or look up) the tenant named @p name.
     *
     * Creation is idempotent by name: a second create with the name of
     * a live tenant returns the existing id and ignores the arguments,
     * so a reconnecting client can re-issue its creates safely.
     *
     * @return The tenant's id, or kInvalidTenant when the service is
     *         stopping or the tenant table is full.
     */
    TenantId createTenant(const std::string &name,
                          const seccomp::Profile &profile,
                          const TenantOptions &tenantOptions = {});

    /** @return The live tenant named @p name, or kInvalidTenant. */
    TenantId findTenant(const std::string &name) const;

    /**
     * Replace tenant @p id's profile under live traffic.
     *
     * The new policy is compiled (or shared via the content-addressed
     * intern) on the calling thread, then published by the tenant's
     * owning shard worker at an item boundary in its FIFO — RCU-style:
     * requests submitted before this call complete under the old
     * epoch, requests after it under the new one, and the swap never
     * lands mid-batch. Publication rebuilds the tenant's VAT+SPT
     * namespace cold (cumulative counters survive), so no verdict
     * cached under the old policy outlives it. Blocks until the
     * worker has published.
     *
     * @param epochOut Receives the newly serving epoch id when set.
     * @return false when @p id is unknown/evicted or the service is
     *         stopping (nothing was published).
     */
    bool swapProfile(TenantId id, const seccomp::Profile &profile,
                     uint64_t *epochOut = nullptr);

    /**
     * Evict tenant @p id: new submits reject with UnknownTenant
     * immediately; requests already queued still check (they precede
     * the eviction in the shard's FIFO), then the tenant's checker —
     * its SPT/VAT state — is destroyed on the owning worker. Counters
     * survive for stats and metrics export.
     *
     * @return false when @p id was unknown or already evicted.
     */
    bool evictTenant(TenantId id);

    /**
     * Snapshot tenant @p id's stats. The snapshot is taken *on the
     * owning shard worker*, FIFO-ordered with the tenant's checks: it
     * reflects exactly the requests submitted before this call.
     *
     * @return false when @p id is unknown (evicted tenants still
     *         report, flagged evicted).
     */
    bool tenantStats(TenantId id, TenantStats &out);

    // ---- checking ----

    /**
     * Submit @p count requests for tenant @p id. Never blocks: every
     * request either enters the owning shard's queue or completes
     * immediately with Overloaded / UnknownTenant / ShuttingDown.
     * Responses land in @p resps (same index as the request) and
     * @p batch is completed as they resolve. @p reqs and @p resps must
     * stay valid until the batch completes.
     *
     * @param obsRec Optional latency-pipeline record. When set, the
     *        submit stamps enqueueNs (and the resolved shard), the
     *        owning worker stamps drainStartNs / checkDoneNs and the
     *        verdict counts, and the record stays writable until
     *        @p batch completes. Null costs the hot path nothing —
     *        no clock reads. Observability never alters verdicts.
     */
    void submitBatch(TenantId id, const os::SyscallRequest *reqs,
                     uint32_t count, CheckResponse *resps, Batch &batch,
                     obs::StageRecord *obsRec = nullptr);

    /** Convenience: submit one request and wait for its verdict. */
    CheckResponse check(TenantId id, const os::SyscallRequest &req);

    // ---- lifecycle ----

    /**
     * Stop serving: new submits complete with ShuttingDown, queued work
     * drains, workers join. Idempotent.
     */
    void stop();

    /** @return true once stop() has begun. */
    bool stopping() const { return _stopping.load(); }

    // ---- inspection ----

    unsigned shards() const
    {
        return static_cast<unsigned>(_shards.size());
    }

    const ServiceOptions &options() const { return _options; }

    /** @return Requests checked (not shed), across all shards. */
    uint64_t totalChecks() const;

    /** @return Requests shed by admission control, across all shards. */
    uint64_t totalRejects() const;

    /**
     * @return The busiest shard's modeled service time — the modeled
     *         makespan of everything checked so far (§V-C pricing).
     */
    double maxShardBusyNs() const;

    /** @return true when a resident-tenant cap governs this service. */
    bool lifecycleEnabled() const { return _shardResidentCap != 0; }

    /** @return Materialized (checker-holding) tenants right now. */
    uint32_t residentTenants() const;

    /** Fill @p out with the service-wide control-plane counters. */
    void serviceStats(ServiceStatsSnapshot &out) const;

    /**
     * Export the `serve.*` metric block under @p prefix: service totals,
     * per-shard counters (`<prefix>.shards.s<i>.*`) and per-tenant
     * counters (`<prefix>.tenants.<name>.*`). Call on a quiesced
     * service (after stop(), or with no traffic in flight).
     */
    void exportMetrics(MetricRegistry &registry,
                       const std::string &prefix = "serve") const;

    /**
     * Export a scrape-safe metric subset under @p prefix while traffic
     * is in flight: unlike exportMetrics(), this reads only atomics
     * and cross-thread mirrors, so the `/metrics` endpoint can call it
     * on a live service without racing the shard workers.
     */
    void exportLiveMetrics(MetricRegistry &registry,
                           const std::string &prefix = "serve.live")
        const;

  private:
    /** What one queued item asks of the worker. */
    enum class Op : uint8_t {
        Check, ///< Run `count` requests through the tenant's checker.
        Stats, ///< Snapshot the tenant into `statsOut`.
        Evict, ///< Destroy the tenant's checker state.
        Swap,  ///< Publish `swapPolicy` as the tenant's next epoch.
    };

    struct TenantState {
        std::string name;
        TenantId id = kInvalidTenant;
        uint32_t shard = 0;
        TenantOptions opts;

        /**
         * The tenant's policy epochs: epoch 1 is installed at create,
         * each live swap publishes the next. Publication happens only
         * on the owning shard worker (or at create, before the worker
         * can see the tenant), so the checker below — rebuilt in the
         * same FIFO step — always matches the current epoch.
         */
        policy::EpochSlot epochs;

        /**
         * Mutable per-tenant state (VAT + counters). Built eagerly at
         * create when no resident cap governs the service; under a
         * cap it is materialized lazily on the owning worker and may
         * be dropped (after snapshotting) between requests.
         */
        std::unique_ptr<core::DracoSoftwareChecker> checker;

        std::atomic<bool> evicted{false};
        std::atomic<uint32_t> inFlight{0};
        std::atomic<uint64_t> rejects{0};

        // Owned by the shard worker (single writer).
        uint64_t allowed = 0;
        uint64_t denied = 0;
        uint64_t swaps = 0; ///< Epochs published beyond the first.
        double busyNs = 0.0;
        bool hasSnapshot = false; ///< A `.dtss` awaits in the store.
        core::SwCheckStats frozenStats; ///< Stats while snapshotted.
    };

    struct Item {
        Op op = Op::Check;
        TenantState *tenant = nullptr;
        const os::SyscallRequest *reqs = nullptr;
        CheckResponse *resps = nullptr;
        uint32_t count = 0;
        Batch *batch = nullptr;
        TenantStats *statsOut = nullptr;
        obs::StageRecord *rec = nullptr; ///< Latency record, optional.

        /** Swap payload: the pre-compiled next-epoch policy. */
        std::shared_ptr<const core::CompiledPolicy> swapPolicy;
        uint64_t *epochOut = nullptr; ///< Receives the published epoch.
    };

    struct Shard {
        std::mutex mutex;
        std::condition_variable wake;
        std::deque<Item> queue;       ///< Guarded by mutex.
        uint32_t queuedRequests = 0;  ///< Requests in queue (guarded).
        uint64_t queueFullRejects = 0;///< Shed at capacity (guarded).
        RunningStat depthStat;        ///< Depth at enqueue (guarded).

        std::atomic<uint32_t> depth{0};     ///< Telemetry mirror.
        std::atomic<uint64_t> rejects{0};   ///< All sheds, any cause.
        std::atomic<uint32_t> lastBatch{0}; ///< Last drain size.

        /** EWMA of modeled ns per checked request (retry hints). */
        std::atomic<double> ewmaCheckNs{100.0};

        // Owned by the shard worker (single writer).
        uint64_t processed = 0;  ///< Requests checked.
        uint64_t drains = 0;     ///< Worker wakeups that took work.
        double busyNs = 0.0;     ///< Modeled service time (§V-C).
        RunningStat batchStat;   ///< Requests per drain.
        uint32_t peakDepth = 0;  ///< Deepest queue seen at enqueue.
        lifecycle::ResidentLru lru; ///< Resident tenants, LRU order.

        /** Cross-thread mirrors of worker-owned lifecycle state. */
        std::atomic<uint32_t> resident{0};
        std::atomic<uint64_t> processedMirror{0};
        std::atomic<double> busyNsMirror{0.0}; ///< For live scrapes.

        obs::Tracer *tracer = nullptr;
    };

    TenantState *tenant(TenantId id) const;
    uint32_t retryAfterUs(const Shard &shard) const;
    void shed(TenantState *t, CheckResponse *resps, uint32_t count,
              Batch &batch, CheckStatus status, uint32_t retryUs);
    bool enqueue(Shard &shard, Item item);
    void shardLoop(size_t index);
    void process(Shard &shard, std::vector<Item> &items);
    void snapshotTenant(const TenantState &t, TenantStats &out) const;

    /**
     * Build tenant @p t's checker on its owning worker, replaying its
     * `.dtss` snapshot when one exists. A failed restore falls back
     * closed: the checker rebuilds fresh from the shared policy (cold
     * VAT, correct verdicts) and the failure is counted.
     */
    void materializeChecker(Shard &shard, TenantState &t);

    /**
     * Post-drain eviction hook: while the shard is over its resident
     * budget, serialize the LRU-coldest tenant to the snapshot store
     * and drop its checker. A failed store put keeps the victim
     * resident (re-touched hottest) rather than dropping state.
     */
    void enforceResidentCap(Shard &shard);

    ServiceOptions _options;
    const os::KernelCosts *_costs;

    std::vector<std::unique_ptr<Shard>> _shards;

    /** Slot i holds tenant id i+1; slots are never reused. */
    std::vector<std::shared_ptr<TenantState>> _tenants;
    std::atomic<uint32_t> _tenantCount{0};
    mutable std::mutex _tenantMutex; ///< Serializes createTenant().

    /** Live tenant name → id (guarded by _tenantMutex); entries are
     * erased on evict so a name can be re-created, and the index
     * keeps createTenant O(1) at million-tenant scale. */
    std::unordered_map<std::string, TenantId> _nameIndex;

    // ---- policy epochs (see src/policy/) ----
    policy::EpochManager _epochs;

    // ---- lifecycle (see src/lifecycle/) ----
    std::unique_ptr<lifecycle::SnapshotStore> _ownedStore;
    lifecycle::SnapshotStore *_store = nullptr;
    uint32_t _shardResidentCap = 0; ///< Per-shard budget; 0 = unbounded.

    std::atomic<uint32_t> _snapshotted{0};
    std::atomic<uint64_t> _evictions{0};
    std::atomic<uint64_t> _restores{0};
    std::atomic<uint64_t> _restoreFailures{0};
    std::atomic<uint64_t> _snapshotPutFailures{0};
    std::atomic<uint64_t> _snapshotBytesWritten{0};
    std::atomic<uint64_t> _snapshotBytesRead{0};

    std::atomic<bool> _stopping{false};
    support::ThreadPool _pool;
};

} // namespace draco::serve

#endif // DRACO_SERVE_SERVICE_HH
