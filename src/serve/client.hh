/**
 * @file
 * Client-side view of the check service.
 *
 * Client is the frontend-neutral interface: dracoload (and the tests)
 * drive it without caring whether checks run in-process or cross a
 * socket. LocalClient binds it to a CheckService in the same address
 * space; SocketClient (serve/server.hh) speaks the dracod wire protocol
 * to a daemon. Profiles cross the boundary *by name* — the server
 * instantiates them from the built-in catalog — so the wire never
 * carries policy bytes.
 */

#ifndef DRACO_SERVE_CLIENT_HH
#define DRACO_SERVE_CLIENT_HH

#include <optional>
#include <string>

#include "serve/service.hh"
#include "serve/types.hh"

namespace draco::serve {

/**
 * Resolve a built-in profile by catalog name: "insecure",
 * "docker-default", "gvisor", or "firecracker".
 *
 * @return The profile, or nullopt when @p name is not in the catalog.
 */
std::optional<seccomp::Profile>
builtinProfileByName(const std::string &name);

/** @return The catalog names accepted by builtinProfileByName(). */
const std::vector<std::string> &builtinProfileNames();

/**
 * Frontend-neutral check-service client (see file comment).
 */
class Client
{
  public:
    virtual ~Client() = default;

    /**
     * Create (or look up) tenant @p name running the built-in profile
     * @p profileName.
     *
     * @return The tenant id, or kInvalidTenant on failure (unknown
     *         profile, table full, service stopping, transport error).
     */
    virtual TenantId createTenant(const std::string &name,
                                  const std::string &profileName,
                                  const TenantOptions &options = {}) = 0;

    /**
     * Check @p count requests for tenant @p id, blocking until every
     * response landed in @p resps.
     *
     * @return false on transport failure (responses invalid).
     */
    virtual bool checkBatch(TenantId id, const os::SyscallRequest *reqs,
                            uint32_t count, CheckResponse *resps) = 0;

    /** Snapshot tenant @p id's server-side stats. */
    virtual bool tenantStats(TenantId id, TenantStats &out) = 0;

    /** Evict tenant @p id. @return false when unknown/already gone. */
    virtual bool evictTenant(TenantId id) = 0;

    /**
     * Hot-swap tenant @p id's profile to the built-in catalog entry
     * @p profileName under live traffic: checks submitted before this
     * call resolve under the old policy, checks after it under the new
     * one. Default-false so pre-existing Client implementations keep
     * compiling.
     *
     * @param epochOut Receives the epoch now serving when non-null.
     * @return false on unknown profile/tenant or transport failure.
     */
    virtual bool updateProfile(TenantId id,
                               const std::string &profileName,
                               uint64_t *epochOut = nullptr)
    {
        (void)id;
        (void)profileName;
        (void)epochOut;
        return false;
    }

    /**
     * Snapshot the service-wide control-plane counters (tenant counts,
     * lifecycle evictions/restores, dedup figures). Default-false so
     * pre-existing Client implementations keep compiling.
     *
     * @return false when the transport failed or the server predates
     *         the ServiceStats message.
     */
    virtual bool serviceStats(ServiceStatsSnapshot &out)
    {
        (void)out;
        return false;
    }
};

/**
 * Client bound to an in-process CheckService.
 */
class LocalClient final : public Client
{
  public:
    /** @param service Backing service (not owned, must outlive this). */
    explicit LocalClient(CheckService &service) : _service(service) {}

    TenantId createTenant(const std::string &name,
                          const std::string &profileName,
                          const TenantOptions &options = {}) override;

    bool checkBatch(TenantId id, const os::SyscallRequest *reqs,
                    uint32_t count, CheckResponse *resps) override;

    bool tenantStats(TenantId id, TenantStats &out) override;

    bool evictTenant(TenantId id) override;

    bool updateProfile(TenantId id, const std::string &profileName,
                       uint64_t *epochOut = nullptr) override;

    bool serviceStats(ServiceStatsSnapshot &out) override;

    /** @return The backing service. */
    CheckService &service() { return _service; }

  private:
    CheckService &_service;
};

} // namespace draco::serve

#endif // DRACO_SERVE_CLIENT_HH
