/**
 * @file
 * Public types of the syscall-check serving subsystem.
 *
 * `dracod` turns the per-process software checker (§V-C) into a
 * long-lived multi-tenant service: each tenant is one confined process
 * — a seccomp profile plus its SPT/VAT state — pinned to one of N
 * shards, and clients submit batches of syscall requests that come back
 * as verdicts. The vocabulary here (statuses, per-tenant options and
 * stats, service knobs) is shared by the in-process client, the wire
 * protocol, and the tools.
 */

#ifndef DRACO_SERVE_TYPES_HH
#define DRACO_SERVE_TYPES_HH

#include <cstdint>
#include <string>

#include "core/software.hh"
#include "os/seccomp_abi.hh"

namespace draco::obs {
class TraceSession;
} // namespace draco::obs

namespace draco::lifecycle {
class SnapshotStore;
} // namespace draco::lifecycle

namespace draco::serve {

/** Dense tenant handle; 0 is never a valid tenant. */
using TenantId = uint32_t;

/** The "no such tenant" sentinel. */
inline constexpr TenantId kInvalidTenant = 0;

/** Outcome of one served check request. */
enum class CheckStatus : uint8_t {
    Allowed,      ///< Checked; the profile allows the call.
    Denied,       ///< Checked; the profile denies the call.
    Overloaded,   ///< Shed by admission control; retry after the hint.
    UnknownTenant,///< No such (or already evicted) tenant.
    ShuttingDown, ///< Service is stopping; no new work accepted.
};

/** @return Stable lowercase name of @p status. */
const char *checkStatusName(CheckStatus status);

/** One served verdict. */
struct CheckResponse {
    CheckStatus status = CheckStatus::ShuttingDown;

    /** core::SwPath taken (valid for Allowed/Denied only). */
    uint8_t path = 0;

    /**
     * Policy epoch the verdict was produced under (1 = the creation
     * profile, +1 per live swap; 0 for shed requests, which never
     * reached a checker). Lets a client driving UpdateProfile confirm
     * exactly where in its request stream the swap boundary landed.
     */
    uint64_t epoch = 0;

    /**
     * Backpressure hint for Overloaded responses: microseconds the
     * client should wait before retrying, estimated from the rejecting
     * shard's queue depth and recent per-check service time.
     */
    uint32_t retryAfterUs = 0;
};

/** Per-tenant knobs fixed at creation. */
struct TenantOptions {
    /** Attached filter copies (2 models syscall-complete-2x). */
    unsigned filterCopies = 1;

    /**
     * Admission cap: at most this many of the tenant's requests may be
     * queued or in service at once. Submits beyond it are rejected with
     * Overloaded and attributed to this tenant, so one flooding tenant
     * sheds its own excess instead of filling the shard queue ahead of
     * its neighbours.
     */
    uint32_t maxInFlight = 1024;
};

/** Point-in-time snapshot of one tenant (FIFO-ordered, see service). */
struct TenantStats {
    std::string name;
    TenantId id = kInvalidTenant;
    uint32_t shard = 0;
    bool evicted = false;

    /** Requests that went through the checker. */
    core::SwCheckStats check;

    uint64_t allowed = 0;  ///< Verdicts that permitted the call.
    uint64_t denied = 0;   ///< Verdicts that denied the call.
    uint64_t rejects = 0;  ///< Requests shed by admission control.
    double busyNs = 0.0;   ///< Modeled service time consumed (§V-C).

    uint64_t epoch = 0;    ///< Current policy epoch (1 = creation).
    uint64_t swaps = 0;    ///< Profile swaps published for this tenant.
};

/** Service-wide configuration. */
struct ServiceOptions {
    /** Shard (worker thread) count; tenants are spread id mod shards. */
    unsigned shards = 1;

    /**
     * Bounded per-shard queue capacity in *requests*. A submit that
     * would exceed it is rejected with Overloaded instead of blocking,
     * so memory stays bounded no matter how fast clients push.
     */
    uint32_t queueCapacity = 4096;

    /**
     * Max requests drained per worker wakeup. Draining a batch under
     * one lock acquisition amortizes queue and metrics cost across the
     * batch; 1 disables batching (one lock round-trip per item).
     */
    uint32_t maxBatch = 64;

    /** Most tenants the service will ever hold (slots preallocate). */
    uint32_t maxTenants = 4096;

    /** Kernel cost preset pricing each check (default: newKernelCosts). */
    const os::KernelCosts *costs = nullptr;

    /**
     * Observability session for per-shard telemetry (queue depth, batch
     * size, rejects sampled over modeled time); nullptr disables.
     * Tracks are named `serve/shard<i>`.
     */
    obs::TraceSession *session = nullptr;

    /**
     * Resident-tenant budget across the service; 0 (the default)
     * keeps every tenant resident forever. When set, each shard holds
     * at most ceil(maxResidentTenants / shards) materialized tenants:
     * checkers are built lazily on first request, the coldest tenants
     * past the cap are serialized to `.dtss` snapshots and dropped
     * after each drain, and a snapshotted tenant is restored
     * transparently on its next request.
     */
    uint32_t maxResidentTenants = 0;

    /**
     * Snapshot backend for evicted tenants (not owned; must outlive
     * the service). nullptr with a resident cap set uses an internal
     * in-memory store.
     */
    lifecycle::SnapshotStore *snapshotStore = nullptr;

    /**
     * Most tenants exportMetrics() emits per-tenant counter blocks
     * for — at fleet scale a million tenants would swamp the JSON;
     * `<prefix>.tenants.exported` records the cap applied.
     */
    uint32_t tenantMetricsLimit = 1024;
};

/** Point-in-time service-wide counters (the control-plane stats op). */
struct ServiceStatsSnapshot {
    uint64_t tenants = 0;        ///< Tenants ever created.
    uint64_t resident = 0;       ///< Tenants currently materialized.
    uint64_t snapshotted = 0;    ///< Tenants currently evicted to store.
    uint64_t evictions = 0;      ///< Cold-tenant snapshot+drops.
    uint64_t restores = 0;       ///< Snapshot restores served.
    uint64_t restoreFailures = 0;///< Restores that failed closed.
    uint64_t snapshotPutFailures = 0; ///< Evictions aborted on store put.
    uint64_t dedupPolicies = 0;  ///< Distinct compiled policies held.
    uint64_t dedupHits = 0;      ///< Tenant creates served by a shared policy.
    uint64_t snapshotBytesWritten = 0; ///< Total `.dtss` bytes written.
    uint64_t snapshotBytesRead = 0;    ///< Total `.dtss` bytes read back.
    uint64_t storeBytes = 0;     ///< Bytes currently in the store.
    uint64_t checks = 0;         ///< Requests checked (not shed).
    uint64_t rejects = 0;        ///< Requests shed by admission control.

    uint64_t policySwaps = 0;        ///< Live profile swaps published.
    uint64_t policySwapFailures = 0; ///< Swaps rejected pre-publication.
    uint64_t staleSnapshotDiscards = 0; ///< `.dtss` dropped, stale epoch.
    uint64_t maxEpoch = 0;           ///< Highest epoch any tenant reached.
};

} // namespace draco::serve

#endif // DRACO_SERVE_TYPES_HH
