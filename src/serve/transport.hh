/**
 * @file
 * Stream-transport endpoints for the dracod wire protocol.
 *
 * The protocol itself (serve/wire.hh) only needs a connected stream
 * fd; this file supplies the two ways of getting one — a Unix-domain
 * socket path, or a TCP `host:port` — behind one Endpoint vocabulary
 * so the server, client, tools, and benches share the listen/connect
 * code instead of each hand-rolling sockaddr plumbing. TCP
 * connections get TCP_NODELAY (frames are latency-sensitive and
 * already batched), listeners get SO_REUSEADDR, and a TCP listener
 * bound to port 0 can report the kernel-chosen port back for tests
 * and benches.
 */

#ifndef DRACO_SERVE_TRANSPORT_HH
#define DRACO_SERVE_TRANSPORT_HH

#include <cstdint>
#include <optional>
#include <string>

namespace draco::serve {

/** One place a wire-protocol peer can listen or connect. */
struct Endpoint {
    enum class Kind : uint8_t {
        Unix, ///< Filesystem socket path.
        Tcp,  ///< host:port.
    };

    Kind kind = Kind::Unix;
    std::string path;    ///< Unix only.
    std::string host;    ///< TCP only.
    uint16_t port = 0;   ///< TCP only; 0 asks the kernel to pick.

    /** @return A Unix endpoint for @p path. */
    static Endpoint unix_(std::string path);

    /**
     * Parse a TCP endpoint from "host:port".
     *
     * @return nullopt when @p spec has no colon, an empty host, or a
     *         port outside [0, 65535].
     */
    static std::optional<Endpoint> parseTcp(const std::string &spec);

    /** @return "unix:<path>" or "tcp:<host>:<port>" for messages. */
    std::string describe() const;
};

/**
 * Bind and listen on @p endpoint.
 *
 * Unix endpoints unlink a stale path first; TCP endpoints resolve the
 * host (getaddrinfo, passive) and set SO_REUSEADDR.
 *
 * @return The listening fd, or -1 with a warning.
 */
int listenEndpoint(const Endpoint &endpoint, int backlog = 128);

/**
 * Connect a stream socket to @p endpoint (blocking connect).
 *
 * @return The connected fd, or -1 with a warning.
 */
int connectEndpoint(const Endpoint &endpoint);

/** @return The local TCP port @p fd is bound to, or 0 on error. */
uint16_t tcpLocalPort(int fd);

/** Set TCP_NODELAY on @p fd (no-op for non-TCP sockets). */
void setNoDelay(int fd);

} // namespace draco::serve

#endif // DRACO_SERVE_TRANSPORT_HH
