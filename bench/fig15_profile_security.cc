/**
 * @file
 * Figure 15: security benefits of application-specific profiles over
 * docker-default.
 *
 * (a) Number of syscalls allowed: the full Linux interface, then
 *     docker-default, then each app's syscall-complete whitelist split
 *     into application-specific and container-runtime-required parts
 *     (the paper's ≈20% dark fraction).
 * (b) Number of argument positions checked and distinct argument values
 *     allowed per application (paper: 23–142 args, 127–2458 values).
 */

#include "common.hh"

using namespace draco;
using namespace draco::bench;

int
main(int argc, char **argv)
{
    BenchReport report("fig15_profile_security", argc, argv);
    ProfileCache cache;

    TextTable a("Figure 15a: number of system calls allowed");
    a.setHeader({"profile", "total", "app-specific", "runtime-required"});
    a.addRow({"linux (native x86-64 table)",
              std::to_string(os::syscallTable().size()), "-", "-"});
    a.addRow({"linux (paper count, all ABIs)",
              std::to_string(os::kPaperLinuxSyscallCount), "-", "-"});
    {
        auto stats = seccomp::dockerDefaultProfile().stats();
        a.addRow({"docker-default", std::to_string(stats.syscallsAllowed),
                  "-", "-"});
    }
    for (const auto *app : benchWorkloads()) {
        auto stats = cache.get(*app).complete.stats();
        a.addRow({app->name, std::to_string(stats.syscallsAllowed),
                  std::to_string(stats.syscallsAllowed -
                                 stats.runtimeRequired),
                  std::to_string(stats.runtimeRequired)});
    }
    a.print();

    TextTable b("Figure 15b: argument checks of syscall-complete "
                "profiles");
    b.setHeader({"profile", "args-checked", "values-allowed"});
    {
        auto docker = seccomp::dockerDefaultProfile().stats();
        b.addRow({"docker-default", std::to_string(docker.argsChecked),
                  std::to_string(docker.valuesAllowed)});
    }
    unsigned minValues = ~0u, maxValues = 0;
    for (const auto *app : benchWorkloads()) {
        auto stats = cache.get(*app).complete.stats();
        minValues = std::min(minValues, stats.valuesAllowed);
        maxValues = std::max(maxValues, stats.valuesAllowed);
        b.addRow({app->name, std::to_string(stats.argsChecked),
                  std::to_string(stats.valuesAllowed)});

        std::string prefix = MetricRegistry::join(
            "figure", MetricRegistry::sanitize(app->name));
        report.registry().setCounter(
            MetricRegistry::join(prefix, "syscalls_allowed"),
            stats.syscallsAllowed);
        report.registry().setCounter(
            MetricRegistry::join(prefix, "args_checked"),
            stats.argsChecked);
        report.registry().setCounter(
            MetricRegistry::join(prefix, "values_allowed"),
            stats.valuesAllowed);
    }
    b.print();

    std::printf("values-allowed range across apps: %u-%u "
                "(paper: 127-2458)\n",
                minValues, maxValues);
    return 0;
}
