/**
 * @file
 * Shared plumbing for the figure/table reproduction binaries.
 *
 * Every bench binary runs (workload × profile × mechanism) experiments
 * through ExperimentRunner and prints a TextTable whose rows mirror the
 * corresponding figure of the paper. Call counts scale with the
 * DRACO_BENCH_CALLS environment variable (default 150000 steady-state
 * syscalls per run).
 */

#ifndef DRACO_BENCH_COMMON_HH
#define DRACO_BENCH_COMMON_HH

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "draco/draco.hh"

namespace draco::bench {

/** Default steady-state call count per experiment run. */
size_t benchCalls();

/** Shared trace/profile seed so every binary sees identical traces. */
inline constexpr uint64_t kBenchSeed = 7;

/** Profile flavours the figures compare. */
enum class ProfileKind {
    Insecure,       ///< Checks disabled.
    DockerDefault,  ///< The generic container profile.
    Noargs,         ///< App-specific syscall-ID whitelist.
    Complete,       ///< App-specific IDs + argument tuples.
    Complete2x,     ///< Complete, attached twice.
};

/** @return Figure label of @p kind ("insecure", "syscall-complete"...). */
const char *profileKindName(ProfileKind kind);

/**
 * Cache of generated app profiles, keyed by workload name (generation
 * replays a 300k-call profiling trace, so each binary does it once).
 */
class ProfileCache
{
  public:
    /** @return The §X-B profiles for @p app. */
    const sim::AppProfiles &get(const workload::AppModel &app);

  private:
    std::map<std::string, sim::AppProfiles> _cache;
};

/**
 * JSON artifact sink for one bench binary.
 *
 * Every binary constructs one BenchReport from its argv; experiments
 * record their RunResults (and any extra metrics) into the report's
 * MetricRegistry under hierarchical names, and the destructor writes
 * the registry as `BENCH_<name>.json` when an output location was
 * requested:
 *
 *  - `--json <path>` (or `--json=<path>`) writes to exactly @p path;
 *  - otherwise, env `DRACO_BENCH_JSON=<dir>` writes
 *    `<dir>/BENCH_<name>.json` (`.` for the working directory);
 *  - otherwise nothing is written and the binary only prints tables.
 *
 * The schema is documented in DESIGN.md §7. Recording happens even
 * when no path was requested, so tests can inspect the registry.
 */
class BenchReport
{
  public:
    /**
     * @param name Artifact name; becomes `BENCH_<name>.json`.
     * @param argc Binary's argc (scanned for `--json`).
     * @param argv Binary's argv.
     */
    BenchReport(const std::string &name, int argc = 0,
                char **argv = nullptr);

    /** Writes the artifact when one was requested and not yet written. */
    ~BenchReport();

    /** @return The registry metrics are recorded into. */
    MetricRegistry &registry() { return _registry; }

    /** @return true when a JSON output path was requested. */
    bool enabled() const { return !_path.empty(); }

    /** @return The resolved output path ("" when disabled). */
    const std::string &path() const { return _path; }

    /** Record @p result under `runs.<prefix>`. */
    void record(const std::string &prefix,
                const sim::RunResult &result);

    /** Serialize now (idempotent; no-op when disabled). */
    void write();

  private:
    std::string _name;
    std::string _path;
    MetricRegistry _registry;
    bool _written = false;
};

/**
 * Run one (workload, profile kind, mechanism) experiment with the bench
 * defaults.
 *
 * @param app Workload.
 * @param kind Profile flavour (selects profile and filter copies).
 * @param mechanism Checking mechanism.
 * @param cache Profile cache shared across calls.
 * @param costs Kernel cost preset.
 */
sim::RunResult runExperiment(const workload::AppModel &app,
                             ProfileKind kind, sim::Mechanism mechanism,
                             ProfileCache &cache,
                             const os::KernelCosts &costs =
                                 os::newKernelCosts());

/** Row labels for the figure tables: all workloads, figure order. */
const std::vector<const workload::AppModel *> &benchWorkloads();

/**
 * Emit a normalized-latency figure: one row per workload plus the
 * macro/micro averages, one column per configuration.
 *
 * @param title Table title.
 * @param columns Column label and a producer returning the full run
 *        result for a workload; the table shows its normalized time.
 * @param report Optional sink: each result is recorded under
 *        `runs.<column>.<workload>` and the column averages under
 *        `figure.<column>.average_{macro,micro}`.
 */
void printNormalizedFigure(
    const std::string &title,
    const std::vector<std::pair<
        std::string,
        std::function<sim::RunResult(const workload::AppModel &)>>>
        &columns,
    BenchReport *report = nullptr);

} // namespace draco::bench

#endif // DRACO_BENCH_COMMON_HH
