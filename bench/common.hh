/**
 * @file
 * Shared plumbing for the figure/table reproduction binaries.
 *
 * Every bench binary runs (workload × profile × mechanism) experiments
 * through ExperimentRunner and prints a TextTable whose rows mirror the
 * corresponding figure of the paper. Call counts scale with the
 * DRACO_BENCH_CALLS environment variable (default 150000 steady-state
 * syscalls per run).
 */

#ifndef DRACO_BENCH_COMMON_HH
#define DRACO_BENCH_COMMON_HH

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "draco/draco.hh"

namespace draco::bench {

/** Default steady-state call count per experiment run. */
size_t benchCalls();

/** Shared trace/profile seed so every binary sees identical traces. */
inline constexpr uint64_t kBenchSeed = 7;

/** Profile flavours the figures compare. */
enum class ProfileKind {
    Insecure,       ///< Checks disabled.
    DockerDefault,  ///< The generic container profile.
    Noargs,         ///< App-specific syscall-ID whitelist.
    Complete,       ///< App-specific IDs + argument tuples.
    Complete2x,     ///< Complete, attached twice.
};

/** @return Figure label of @p kind ("insecure", "syscall-complete"...). */
const char *profileKindName(ProfileKind kind);

/**
 * Cache of generated app profiles, keyed by workload name (generation
 * replays a 300k-call profiling trace, so each binary does it once).
 */
class ProfileCache
{
  public:
    /** @return The §X-B profiles for @p app. */
    const sim::AppProfiles &get(const workload::AppModel &app);

  private:
    std::map<std::string, sim::AppProfiles> _cache;
};

/**
 * Run one (workload, profile kind, mechanism) experiment with the bench
 * defaults.
 *
 * @param app Workload.
 * @param kind Profile flavour (selects profile and filter copies).
 * @param mechanism Checking mechanism.
 * @param cache Profile cache shared across calls.
 * @param costs Kernel cost preset.
 */
sim::RunResult runExperiment(const workload::AppModel &app,
                             ProfileKind kind, sim::Mechanism mechanism,
                             ProfileCache &cache,
                             const os::KernelCosts &costs =
                                 os::newKernelCosts());

/** Row labels for the figure tables: all workloads, figure order. */
const std::vector<const workload::AppModel *> &benchWorkloads();

/**
 * Emit a normalized-latency figure: one row per workload plus the
 * macro/micro averages, one column per configuration.
 *
 * @param title Table title.
 * @param columns Column label and a producer returning the normalized
 *        execution time for a workload.
 */
void printNormalizedFigure(
    const std::string &title,
    const std::vector<std::pair<
        std::string,
        std::function<double(const workload::AppModel &)>>> &columns);

} // namespace draco::bench

#endif // DRACO_BENCH_COMMON_HH
