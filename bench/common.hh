/**
 * @file
 * Shared plumbing for the figure/table reproduction binaries.
 *
 * Every bench binary runs (workload × profile × mechanism) experiments
 * through ExperimentRunner and prints a TextTable whose rows mirror the
 * corresponding figure of the paper. Call counts scale with the
 * DRACO_BENCH_CALLS environment variable (default 150000 steady-state
 * syscalls per run).
 *
 * Sweeps execute on a support::ThreadPool: independent cells fan out
 * across `--threads N` (or DRACO_BENCH_THREADS; default: hardware
 * concurrency) worker threads. Parallelism never changes results —
 * every cell derives its seeds from its own coordinates via
 * splitSeed(), records into a private MetricRegistry shard, and the
 * shards merge back in cell-index order, so tables and BENCH_*.json
 * artifacts are byte-identical at any thread count.
 */

#ifndef DRACO_BENCH_COMMON_HH
#define DRACO_BENCH_COMMON_HH

#include <functional>
#include <future>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "draco/draco.hh"
#include "support/threadpool.hh"

namespace draco::bench {

/** Default steady-state call count per experiment run. */
size_t benchCalls();

/**
 * Worker threads used for sweeps: the last `--threads N` seen by a
 * BenchReport constructor, else DRACO_BENCH_THREADS, else hardware
 * concurrency. Always at least 1.
 */
unsigned benchThreads();

/**
 * The process-wide trace session bench binaries record into.
 *
 * Disabled until a BenchReport constructor sees `--trace-out <path>`
 * (or env DRACO_TRACE_OUT); `--sample-every <cycles>` (or env
 * DRACO_TRACE_SAMPLE_EVERY) additionally turns on telemetry sampling.
 * runExperiment() claims one track per (kind, mechanism, workload)
 * cell, so any sweep exports the same byte-identical trace at any
 * `--threads N`. BenchReport::write() serializes the session next to
 * the JSON artifact.
 */
obs::TraceSession &benchTraceSession();

/** Shared trace/profile seed so every binary sees identical traces. */
inline constexpr uint64_t kBenchSeed = 7;

/** Profile flavours the figures compare. */
enum class ProfileKind {
    Insecure,       ///< Checks disabled.
    DockerDefault,  ///< The generic container profile.
    Noargs,         ///< App-specific syscall-ID whitelist.
    Complete,       ///< App-specific IDs + argument tuples.
    Complete2x,     ///< Complete, attached twice.
};

/** @return Figure label of @p kind ("insecure", "syscall-complete"...). */
const char *profileKindName(ProfileKind kind);

/**
 * Trace/profile seed of @p app's experiments: the per-workload
 * SplitMix64 stream of kBenchSeed. Shared by every (kind, mechanism)
 * cell of a workload so all columns see byte-identical syscalls and
 * the generated profiles cover exactly the measured trace.
 */
uint64_t workloadSeed(const workload::AppModel &app);

/**
 * Cache of generated app profiles, keyed by workload name (generation
 * replays a 300k-call profiling trace, so each binary does it once).
 *
 * Safe for concurrent use: the first caller of a key generates while
 * holding a per-key promise, later callers block on that promise, so
 * concurrent sweep cells generate each workload's profiles exactly
 * once.
 */
class ProfileCache
{
  public:
    /** @return The §X-B profiles for @p app. */
    const sim::AppProfiles &get(const workload::AppModel &app);

  private:
    struct Entry {
        std::promise<void> ready;
        std::shared_future<void> done;
        std::optional<sim::AppProfiles> profiles;
    };

    std::mutex _mutex;
    std::map<std::string, Entry> _cache;
};

/**
 * JSON artifact sink for one bench binary.
 *
 * Every binary constructs one BenchReport from its argv; experiments
 * record their RunResults (and any extra metrics) into the report's
 * MetricRegistry under hierarchical names, and the destructor writes
 * the registry as `BENCH_<name>.json` when an output location was
 * requested:
 *
 *  - `--json <path>` (or `--json=<path>`) writes to exactly @p path;
 *  - otherwise, env `DRACO_BENCH_JSON=<dir>` writes
 *    `<dir>/BENCH_<name>.json` (`.` for the working directory);
 *  - otherwise nothing is written and the binary only prints tables.
 *
 * The constructor also consumes `--threads N` / `--threads=N` (see
 * benchThreads()) and `--trace-out <path>` / `--sample-every <cycles>`
 * (see benchTraceSession()). The schema is documented in DESIGN.md §7,
 * the concurrency model in DESIGN.md §8, tracing in DESIGN.md §10.
 * Recording happens even when no path was requested, so tests can
 * inspect the registry.
 *
 * record() and mergeShard() serialize on an internal lock, so cells
 * may record concurrently; a failed JSON write is reported on stderr
 * with the path (never swallowed, never fatal from the destructor).
 */
class BenchReport
{
  public:
    /**
     * @param name Artifact name; becomes `BENCH_<name>.json`.
     * @param argc Binary's argc (scanned for `--json`/`--threads`).
     * @param argv Binary's argv.
     */
    BenchReport(const std::string &name, int argc = 0,
                char **argv = nullptr);

    /** Writes the artifact when one was requested and not yet written. */
    ~BenchReport();

    /** @return The registry metrics are recorded into. */
    MetricRegistry &registry() { return _registry; }

    /** @return true when a JSON output path was requested. */
    bool enabled() const { return !_path.empty(); }

    /** @return The resolved output path ("" when disabled). */
    const std::string &path() const { return _path; }

    /** Record @p result under `runs.<prefix>` (thread-safe). */
    void record(const std::string &prefix,
                const sim::RunResult &result);

    /** Merge a sweep cell's registry shard (thread-safe). */
    void mergeShard(const MetricRegistry &shard);

    /** Serialize now (idempotent; no-op when disabled). */
    void write();

  private:
    std::string _name;
    std::string _path;
    std::mutex _mutex;
    MetricRegistry _registry;
    bool _written = false;
};

/**
 * Record @p result under `runs.<prefix>` in a sweep cell's private
 * shard — the shard-side counterpart of BenchReport::record().
 */
void recordCell(MetricRegistry &shard, const std::string &prefix,
                const sim::RunResult &result);

/**
 * Run @p cells independent sweep cells on the bench thread pool.
 *
 * Each cell gets a private MetricRegistry shard to record into; after
 * all cells finish, the shards merge into @p report (when given) in
 * cell-index order. Cells must be self-contained — no shared mutable
 * state beyond ProfileCache — so any thread count and any scheduling
 * produce identical registries. Cell exceptions propagate (lowest
 * index wins) after the sweep drains.
 *
 * @param cells Number of cells.
 * @param cell Cell body; receives its index and its shard.
 * @param report Shard sink; may be nullptr (shards are discarded).
 */
void parallelCells(size_t cells,
                   const std::function<void(size_t, MetricRegistry &)> &cell,
                   BenchReport *report);

/**
 * Run one (workload, profile kind, mechanism) experiment with the bench
 * defaults.
 *
 * The trace seed is the per-workload stream (workloadSeed()); the
 * auxiliary timing streams split further per (kind, mechanism), so
 * every sweep cell owns statistically independent randomness.
 *
 * When benchTraceSession() is enabled the run records onto the
 * `<kind>/<mechanism>/<workload>` track — one single-writer track per
 * sweep cell, so concurrent cells never share a ring.
 *
 * @param app Workload.
 * @param kind Profile flavour (selects profile and filter copies).
 * @param mechanism Checking mechanism.
 * @param cache Profile cache shared across calls.
 * @param costs Kernel cost preset.
 */
sim::RunResult runExperiment(const workload::AppModel &app,
                             ProfileKind kind, sim::Mechanism mechanism,
                             ProfileCache &cache,
                             const os::KernelCosts &costs =
                                 os::newKernelCosts());

/** Row labels for the figure tables: all workloads, figure order. */
const std::vector<const workload::AppModel *> &benchWorkloads();

/**
 * Emit a normalized-latency figure: one row per workload plus the
 * macro/micro averages, one column per configuration.
 *
 * The (workload × column) cells run via parallelCells(); column
 * producers must be thread-safe (runExperiment with a shared
 * ProfileCache is).
 *
 * @param title Table title.
 * @param columns Column label and a producer returning the full run
 *        result for a workload; the table shows its normalized time.
 * @param report Optional sink: each result is recorded under
 *        `runs.<column>.<workload>` and the column averages under
 *        `figure.<column>.average_{macro,micro}`.
 */
void printNormalizedFigure(
    const std::string &title,
    const std::vector<std::pair<
        std::string,
        std::function<sim::RunResult(const workload::AppModel &)>>>
        &columns,
    BenchReport *report = nullptr);

} // namespace draco::bench

#endif // DRACO_BENCH_COMMON_HH
