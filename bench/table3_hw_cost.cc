/**
 * @file
 * Table III: area, access time, dynamic read energy, and leakage of
 * Draco's hardware structures at 22 nm.
 *
 * Three values are printed per metric: the uncalibrated first-order
 * model estimate, the calibrated value (model × fitted factor), and the
 * paper's CACTI 7 / Synopsys DC number. Calibrated equals paper by
 * construction; the base column shows how far the analytic model lands
 * on its own.
 */

#include "common.hh"

using namespace draco;
using namespace draco::bench;
using namespace draco::hwmodel;

int
main(int argc, char **argv)
{
    BenchReport report("table3_hw_cost", argc, argv);
    TextTable table("Table III: Draco hardware analysis at 22 nm");
    table.setHeader({"unit", "metric", "base-model", "calibrated",
                     "paper"});

    for (const auto &row : dracoTable3()) {
        std::string prefix = MetricRegistry::join(
            "units", MetricRegistry::sanitize(row.name));
        auto &reg = report.registry();
        reg.setGauge(MetricRegistry::join(prefix, "area_mm2"),
                     row.calibrated.areaMm2);
        reg.setGauge(MetricRegistry::join(prefix, "access_ps"),
                     row.calibrated.accessPs);
        reg.setGauge(MetricRegistry::join(prefix, "read_energy_pj"),
                     row.calibrated.readEnergyPj);
        reg.setGauge(MetricRegistry::join(prefix, "leakage_mw"),
                     row.calibrated.leakageMw);
        auto add = [&](const char *metric, double base, double calib,
                       double paper, int decimals) {
            table.addRow({row.name, metric,
                          TextTable::num(base, decimals),
                          TextTable::num(calib, decimals),
                          TextTable::num(paper, decimals)});
        };
        add("area (mm^2)", row.base.areaMm2, row.calibrated.areaMm2,
            row.paper.areaMm2, 5);
        add("access (ps)", row.base.accessPs, row.calibrated.accessPs,
            row.paper.accessPs, 2);
        add("read energy (pJ)", row.base.readEnergyPj,
            row.calibrated.readEnergyPj, row.paper.readEnergyPj, 3);
        add("leakage (mW)", row.base.leakageMw,
            row.calibrated.leakageMw, row.paper.leakageMw, 3);
    }
    table.print();

    std::printf("cycle budget at 2 GHz: tables %u cycle(s), CRC %u "
                "cycle(s); the evaluation conservatively charges 2 and "
                "3 cycles respectively (§X-C)\n",
                cyclesFor(131.61, 2.0), cyclesFor(964.0, 2.0));
    return 0;
}
