/**
 * @file
 * Million-tenant lifecycle bench: bounded resident set under Zipf
 * access, with verdict streams byte-identical to never evicting.
 *
 * Two phases over the same synthetic fleet and the same deterministic
 * access sequence:
 *
 *   evict-on:     --max-resident-tenants-style cap (default 10k over
 *                 1M tenants); cold tenants serialize to the in-memory
 *                 snapshot store and restore on demand.
 *   all-resident: no cap — every tenant keeps its checker forever.
 *
 * Every tenant runs docker-default, so the content-addressed policy
 * store collapses one million compiles into one shared CompiledPolicy
 * (the dedup ratio the JSON reports). Accesses draw tenants from a
 * Zipf(s) distribution — a hot head keeps its checkers resident while
 * the cold tail churns through snapshot/restore — and each access is a
 * single check whose (status, path) pair folds into that tenant's
 * CRC-64 verdict fingerprint.
 *
 * The bench asserts (fatal on violation):
 *   - per-tenant fingerprints identical across the two phases, i.e.
 *     eviction is invisible to verdicts (snapshots restore the VAT
 *     slot-exactly);
 *   - the resident set never exceeds the cap (after each submission
 *     window, when post-drain enforcement has run);
 *   - dedup ratio (tenants / distinct policies) >= 100.
 *
 * JSON artifact: `figure.{tenants,cap,accesses,zipf_s,dedup_ratio,
 * fingerprints_match}`, `evict.{resident_peak,evictions,restores,
 * evictions_per_s,restores_per_s,snapshot_bytes_written,store_bytes,
 * rss_mb,...}` and `full.{resident,rss_mb,...}`.
 *
 * Scale knobs (CI smoke runs 10k tenants, cap 1k):
 *   --tenants N  --cap N  --accesses N  --zipf S
 */

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common.hh"
#include "hash/crc64.hh"
#include "serve/service.hh"
#include "support/random.hh"
#include "workload/appmodel.hh"

using namespace draco;
using namespace draco::bench;

namespace {

constexpr unsigned kShards = 2;
constexpr uint32_t kWindow = 1024; ///< Accesses in flight per wait.
constexpr size_t kPoolSize = 4096; ///< Distinct requests in the pool.

struct Config {
    uint64_t tenants = 1'000'000;
    uint64_t cap = 10'000;
    uint64_t accesses = 1'000'000;
    double zipfS = 0.99;
};

/** Current VmRSS in MiB (0 when /proc is unavailable). */
double
residentMb()
{
    std::FILE *f = std::fopen("/proc/self/status", "r");
    if (!f)
        return 0.0;
    char line[256];
    double mb = 0.0;
    while (std::fgets(line, sizeof(line), f)) {
        long kb;
        if (std::sscanf(line, "VmRSS: %ld kB", &kb) == 1) {
            mb = static_cast<double>(kb) / 1024.0;
            break;
        }
    }
    std::fclose(f);
    return mb;
}

/** Deterministic request pool both phases index identically. */
std::vector<os::SyscallRequest>
makePool()
{
    const workload::AppModel &app = *benchWorkloads().front();
    workload::TraceGenerator gen(
        app, splitSeed(workloadSeed(app), "tenant_scale/pool"));
    workload::Trace trace = gen.generate(kPoolSize);
    std::vector<os::SyscallRequest> pool;
    pool.reserve(trace.size());
    for (const workload::TraceEvent &ev : trace)
        pool.push_back(ev.req);
    return pool;
}

/** The request tenant @p t sees on its @p k-th access. */
const os::SyscallRequest &
requestFor(const std::vector<os::SyscallRequest> &pool, uint64_t t,
           uint64_t k)
{
    return pool[(t * 2654435761ULL + k) % pool.size()];
}

struct PhaseResult {
    std::vector<uint64_t> fingerprints; ///< Per tenant id-1; 0 = untouched.
    uint64_t residentPeak = 0;
    double wallSeconds = 0.0;
    double rssMb = 0.0;
    serve::ServiceStatsSnapshot stats;
};

/**
 * Run @p cfg.accesses Zipf-drawn checks against a fleet of
 * @p cfg.tenants, folding verdicts into per-tenant fingerprints.
 */
PhaseResult
runPhase(const Config &cfg, uint64_t residentCap,
         const std::vector<os::SyscallRequest> &pool,
         const std::vector<uint64_t> &accessTenant)
{
    serve::ServiceOptions options;
    options.shards = kShards;
    options.queueCapacity = 4 * kWindow;
    options.maxBatch = 64;
    options.maxTenants = static_cast<uint32_t>(cfg.tenants);
    options.maxResidentTenants = static_cast<uint32_t>(residentCap);
    const os::KernelCosts costs = os::newKernelCosts();
    options.costs = &costs;
    serve::CheckService service(options);

    static const seccomp::Profile profile =
        seccomp::dockerDefaultProfile();
    for (uint64_t t = 0; t < cfg.tenants; ++t) {
        serve::TenantId id =
            service.createTenant("t" + std::to_string(t), profile);
        if (id != t + 1)
            fatal("tenant_scale: tenant %" PRIu64 " got id %u", t, id);
    }

    // The per-shard cap rounds up, so the service-wide bound the bench
    // may observe is shards * ceil(cap / shards).
    const uint64_t residentBound =
        residentCap == 0
            ? cfg.tenants
            : kShards * ((residentCap + kShards - 1) / kShards);

    PhaseResult result;
    result.fingerprints.assign(cfg.tenants, 0);
    std::vector<uint64_t> perTenantSeq(cfg.tenants, 0);
    const Crc64 &crc = crc64Ecma();

    std::vector<os::SyscallRequest> reqs(kWindow);
    std::vector<serve::CheckResponse> resps(kWindow);
    std::vector<uint64_t> windowTenants(kWindow);

    const auto t0 = std::chrono::steady_clock::now();
    uint64_t done = 0;
    while (done < cfg.accesses) {
        const uint32_t n = static_cast<uint32_t>(
            std::min<uint64_t>(kWindow, cfg.accesses - done));
        serve::Batch batch;
        for (uint32_t i = 0; i < n; ++i) {
            const uint64_t t = accessTenant[done + i];
            windowTenants[i] = t;
            reqs[i] = requestFor(pool, t, perTenantSeq[t]++);
            // One submit per access keeps per-tenant FIFO order while
            // the whole window shares a single completion wait.
            service.submitBatch(static_cast<serve::TenantId>(t + 1),
                                &reqs[i], 1, &resps[i], batch);
        }
        batch.wait();
        for (uint32_t i = 0; i < n; ++i) {
            if (resps[i].status != serve::CheckStatus::Allowed &&
                resps[i].status != serve::CheckStatus::Denied)
                fatal("tenant_scale: access %" PRIu64 " shed (%s)",
                      done + i, serve::checkStatusName(resps[i].status));
            uint8_t bytes[2] = {static_cast<uint8_t>(resps[i].status),
                                resps[i].path};
            const uint64_t t = windowTenants[i];
            result.fingerprints[t] =
                crc.compute(bytes, sizeof(bytes), result.fingerprints[t]);
        }
        done += n;

        // Post-drain the cap must hold; a window whose final drain
        // exceeded it means eviction is broken.
        const uint64_t resident = service.residentTenants();
        result.residentPeak = std::max(result.residentPeak, resident);
        if (resident > residentBound)
            fatal("tenant_scale: %" PRIu64 " tenants resident, bound "
                  "%" PRIu64, resident, residentBound);
    }
    result.wallSeconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
    result.rssMb = residentMb();
    service.serviceStats(result.stats);
    service.stop();
    return result;
}

void
recordPhase(MetricRegistry &registry, const std::string &prefix,
            const PhaseResult &phase)
{
    auto name = [&](const char *metric) {
        return MetricRegistry::join(prefix, metric);
    };
    registry.setCounter(name("resident_peak"), phase.residentPeak);
    registry.setCounter(name("resident_final"), phase.stats.resident);
    registry.setCounter(name("snapshotted"), phase.stats.snapshotted);
    registry.setCounter(name("evictions"), phase.stats.evictions);
    registry.setCounter(name("restores"), phase.stats.restores);
    registry.setCounter(name("restore_failures"),
                        phase.stats.restoreFailures);
    registry.setCounter(name("snapshot_bytes_written"),
                        phase.stats.snapshotBytesWritten);
    registry.setCounter(name("snapshot_bytes_read"),
                        phase.stats.snapshotBytesRead);
    registry.setCounter(name("store_bytes"), phase.stats.storeBytes);
    registry.setCounter(name("checks"), phase.stats.checks);
    registry.setGauge(name("wall_seconds"), phase.wallSeconds);
    registry.setGauge(name("rss_mb"), phase.rssMb);
    const double secs = phase.wallSeconds > 0.0 ? phase.wallSeconds : 1.0;
    registry.setGauge(name("evictions_per_s"),
                      static_cast<double>(phase.stats.evictions) / secs);
    registry.setGauge(name("restores_per_s"),
                      static_cast<double>(phase.stats.restores) / secs);
}

} // namespace

int
main(int argc, char **argv)
{
    Config cfg;
    for (int i = 1; i < argc - 1; ++i) {
        if (std::strcmp(argv[i], "--tenants") == 0)
            cfg.tenants = std::strtoull(argv[i + 1], nullptr, 10);
        else if (std::strcmp(argv[i], "--cap") == 0)
            cfg.cap = std::strtoull(argv[i + 1], nullptr, 10);
        else if (std::strcmp(argv[i], "--accesses") == 0)
            cfg.accesses = std::strtoull(argv[i + 1], nullptr, 10);
        else if (std::strcmp(argv[i], "--zipf") == 0)
            cfg.zipfS = std::strtod(argv[i + 1], nullptr);
    }
    if (cfg.tenants == 0 || cfg.cap == 0 || cfg.accesses == 0)
        fatal("tenant_scale: --tenants/--cap/--accesses must be > 0");

    BenchReport report("tenant_scale", argc, argv);

    const auto pool = makePool();

    // One shared access sequence, drawn once: both phases replay it.
    std::vector<uint64_t> accessTenant(cfg.accesses);
    {
        ZipfSampler zipf(cfg.tenants, cfg.zipfS);
        Rng rng(splitSeed(0x74656e616e7473ULL, "tenant_scale/access"));
        for (uint64_t i = 0; i < cfg.accesses; ++i)
            accessTenant[i] = zipf.sample(rng);
    }

    inform("tenant_scale: %" PRIu64 " tenants, cap %" PRIu64
           ", %" PRIu64 " Zipf(%.2f) accesses",
           cfg.tenants, cfg.cap, cfg.accesses, cfg.zipfS);

    PhaseResult evict = runPhase(cfg, cfg.cap, pool, accessTenant);
    inform("tenant_scale: evict-on done: peak resident %" PRIu64
           ", %" PRIu64 " evictions, %" PRIu64 " restores, rss %.0f MB",
           evict.residentPeak, evict.stats.evictions,
           evict.stats.restores, evict.rssMb);

    PhaseResult full = runPhase(cfg, 0, pool, accessTenant);
    inform("tenant_scale: all-resident done: rss %.0f MB", full.rssMb);

    // ---- the three asserts ----

    uint64_t mismatches = 0;
    for (uint64_t t = 0; t < cfg.tenants; ++t)
        if (evict.fingerprints[t] != full.fingerprints[t])
            ++mismatches;
    if (mismatches > 0)
        fatal("tenant_scale: %" PRIu64 " tenant verdict fingerprints "
              "diverged between evict-on and all-resident", mismatches);

    if (evict.stats.dedupPolicies == 0)
        fatal("tenant_scale: policy store is empty");
    const double dedupRatio =
        static_cast<double>(cfg.tenants) /
        static_cast<double>(evict.stats.dedupPolicies);
    if (dedupRatio < 100.0)
        fatal("tenant_scale: dedup ratio %.1f below 100x", dedupRatio);

    TextTable table("tenant lifecycle at scale (" +
                    std::to_string(cfg.tenants) + " tenants, cap " +
                    std::to_string(cfg.cap) + ")");
    table.setHeader({"phase", "resident_peak", "evict/s", "restore/s",
                     "snap_MB", "rss_MB", "wall_s"});
    const double evictSecs =
        evict.wallSeconds > 0.0 ? evict.wallSeconds : 1.0;
    table.addRow({"evict-on", std::to_string(evict.residentPeak),
                  TextTable::num(evict.stats.evictions / evictSecs, 0),
                  TextTable::num(evict.stats.restores / evictSecs, 0),
                  TextTable::num(evict.stats.snapshotBytesWritten / 1e6,
                                 1),
                  TextTable::num(evict.rssMb, 0),
                  TextTable::num(evict.wallSeconds, 2)});
    table.addRow({"all-resident", std::to_string(full.residentPeak),
                  "0", "0", "0",
                  TextTable::num(full.rssMb, 0),
                  TextTable::num(full.wallSeconds, 2)});
    table.print();
    std::printf("fingerprints identical across %" PRIu64
                " tenants; dedup ratio %.0fx (%" PRIu64 " policies)\n",
                cfg.tenants, dedupRatio, evict.stats.dedupPolicies);

    MetricRegistry &registry = report.registry();
    registry.setCounter("figure.tenants", cfg.tenants);
    registry.setCounter("figure.cap", cfg.cap);
    registry.setCounter("figure.accesses", cfg.accesses);
    registry.setGauge("figure.zipf_s", cfg.zipfS);
    registry.setGauge("figure.dedup_ratio", dedupRatio);
    registry.setCounter("figure.dedup_policies",
                        evict.stats.dedupPolicies);
    registry.setCounter("figure.fingerprints_match", 1);
    recordPhase(registry, "evict", evict);
    recordPhase(registry, "full", full);
    return 0;
}
