/**
 * @file
 * Figure 13: STB hit rate and SLB access/preload hit rates under
 * hardware Draco with syscall-complete profiles.
 *
 * Paper shape: STB > 93% except Elasticsearch and Redis; SLB preload
 * ≈ 99% except HTTPD/Elasticsearch/MySQL/Redis; for those four the SLB
 * access hit rate still lands in 75–93% because preloading fetches the
 * needed entries on time.
 */

#include "common.hh"

using namespace draco;
using namespace draco::bench;

int
main(int argc, char **argv)
{
    BenchReport report("fig13_hit_rates", argc, argv);
    ProfileCache cache;

    TextTable table("Figure 13: hit rates of STB and SLB (percent; "
                    "hardware Draco, syscall-complete)");
    table.setHeader(
        {"workload", "stb", "slb-access", "slb-preload", "fast-flows"});

    const auto &apps = benchWorkloads();
    std::vector<sim::RunResult> results(apps.size());
    parallelCells(
        apps.size(),
        [&](size_t i, MetricRegistry &shard) {
            sim::RunResult r =
                runExperiment(*apps[i], ProfileKind::Complete,
                              sim::Mechanism::DracoHW, cache);
            recordCell(shard, MetricRegistry::sanitize(apps[i]->name),
                       r);
            results[i] = std::move(r);
        },
        &report);

    RunningStat stbMacro, stbMicro;
    for (size_t i = 0; i < apps.size(); ++i) {
        const sim::RunResult &r = results[i];
        uint64_t fast = r.hw.flows[0] + r.hw.flows[1] + r.hw.flows[3] +
            r.hw.flows[5];
        double fastFrac = r.hw.syscalls
            ? static_cast<double>(fast) / r.hw.syscalls
            : 0.0;

        (apps[i]->isMacro ? stbMacro : stbMicro).add(r.stbHitRate());
        table.addRow({
            apps[i]->name,
            TextTable::num(r.stbHitRate() * 100.0, 1),
            TextTable::num(r.slbAccessHitRate() * 100.0, 1),
            TextTable::num(r.slbPreloadHitRate() * 100.0, 1),
            TextTable::num(fastFrac * 100.0, 1),
        });
    }
    table.print();

    std::printf("mean STB hit rate: macro %.1f%%, micro %.1f%% "
                "(paper: >93%% except elasticsearch/redis)\n",
                stbMacro.mean() * 100.0, stbMicro.mean() * 100.0);

    report.registry().setGauge("figure.stb_hit_rate.average_macro",
                               stbMacro.mean());
    report.registry().setGauge("figure.stb_hit_rate.average_micro",
                               stbMicro.mean());
    return 0;
}
