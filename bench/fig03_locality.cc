/**
 * @file
 * Figure 3: frequency of the top system calls across the macro
 * benchmarks, broken down by argument set, with the average reuse
 * distance of (syscall ID, argument set) pairs.
 *
 * Paper shape: 20 syscalls cover ~86% of all calls; most syscalls use
 * three or fewer argument sets for the bulk of their invocations; reuse
 * distances are typically a few tens of calls.
 */

#include <algorithm>

#include "common.hh"
#include "trace/replay.hh"

using namespace draco;
using namespace draco::bench;

namespace {

/** Key identifying a (sid, argset) pair for reuse-distance tracking. */
uint64_t
pairKey(uint16_t sid, const core::ArgKey &key)
{
    return (static_cast<uint64_t>(sid) << 48) ^
        crc64Ecma().compute(key.data(), key.size());
}

} // namespace

int
main(int argc, char **argv)
{
    BenchReport report("fig03_locality", argc, argv);
    FrequencyCounter sidCounts;
    std::map<uint16_t, FrequencyCounter> argsetCounts;
    ReuseDistanceTracker reuse;
    std::map<uint16_t, ReuseDistanceTracker> perSidReuse;

    auto analyze = [&](const os::SyscallRequest &req) {
        const auto *desc = os::syscallById(req.sid);
        if (!desc)
            return;
        sidCounts.add(req.sid);

        seccomp::ArgVector args;
        std::copy(req.args.begin(), req.args.end(), args.begin());
        core::ArgKey key(desc->argumentBitmask(), args);
        uint64_t argsetId = crc64Ecma().compute(key.data(), key.size());
        argsetCounts[req.sid].add(argsetId);
        perSidReuse[req.sid].access(pairKey(req.sid, key));
        reuse.access(pairKey(req.sid, key));
    };

    // `--trace <file>` (repeatable) analyzes ingested real traces —
    // strace text, `# draco-trace`, or `.dtrc` — instead of the
    // synthetic macro workloads.
    std::vector<std::string> tracePaths;
    for (int i = 1; i < argc; ++i)
        if (std::string(argv[i]) == "--trace" && i + 1 < argc)
            tracePaths.push_back(argv[++i]);

    if (!tracePaths.empty()) {
        for (const std::string &path : tracePaths) {
            trace::OpenedTrace opened = trace::openTraceStream(path);
            if (!opened.ok()) {
                std::fprintf(stderr, "fig03_locality: %s\n",
                             opened.error.c_str());
                return 1;
            }
            workload::TraceEvent event;
            while (opened.stream->next(event))
                analyze(event.req);
            report.registry().setText(
                MetricRegistry::join(
                    "figure.traces",
                    MetricRegistry::sanitize(path)),
                opened.format);
        }
    } else {
        // Aggregate the macro benchmarks' steady-state traces.
        for (const auto &app : workload::macroWorkloads()) {
            workload::TraceGenerator gen(app, kBenchSeed);
            size_t calls = benchCalls() / 2;
            for (size_t i = 0; i < calls; ++i)
                analyze(gen.next().req);
        }
    }

    TextTable table(
        "Figure 3: top system calls across macro benchmarks "
        "(fraction of all calls, argument-set breakdown, mean reuse "
        "distance of (ID, argset) pairs)");
    table.setHeader({"syscall", "fraction", "set1", "set2", "set3",
                     "other-sets", "distinct-sets", "reuse-dist"});

    auto sorted = sidCounts.sortedByCount();
    double covered = 0.0;
    size_t shown = std::min<size_t>(20, sorted.size());
    for (size_t i = 0; i < shown; ++i) {
        auto [sid, count] = sorted[i];
        double fraction =
            static_cast<double>(count) / sidCounts.total();
        covered += fraction;

        const auto &sets = argsetCounts[static_cast<uint16_t>(sid)];
        auto setSorted = sets.sortedByCount();
        double top[3] = {0, 0, 0};
        for (size_t s = 0; s < setSorted.size() && s < 3; ++s)
            top[s] = static_cast<double>(setSorted[s].second) / count;
        double other = 1.0 - top[0] - top[1] - top[2];

        std::string sidPrefix = MetricRegistry::join(
            "figure.syscalls",
            MetricRegistry::sanitize(
                os::syscallById(static_cast<uint16_t>(sid))->name));
        report.registry().setGauge(
            MetricRegistry::join(sidPrefix, "fraction"), fraction);
        report.registry().setCounter(
            MetricRegistry::join(sidPrefix, "distinct_sets"),
            sets.distinct());
        report.registry().setGauge(
            MetricRegistry::join(sidPrefix, "reuse_distance"),
            perSidReuse[static_cast<uint16_t>(sid)]
                .overallMeanDistance());

        table.addRow({
            os::syscallById(static_cast<uint16_t>(sid))->name,
            TextTable::num(fraction, 4),
            TextTable::num(top[0], 3),
            TextTable::num(top[1], 3),
            TextTable::num(top[2], 3),
            TextTable::num(std::max(0.0, other), 3),
            std::to_string(sets.distinct()),
            TextTable::num(
                perSidReuse[static_cast<uint16_t>(sid)]
                    .overallMeanDistance(),
                1),
        });
    }
    table.print();

    std::printf("top-%zu syscalls cover %.1f%% of all calls "
                "(paper: top-20 cover ~86%%)\n",
                shown, covered * 100.0);
    std::printf("overall mean (ID, argset) reuse distance: %.1f calls\n",
                reuse.overallMeanDistance());

    report.registry().setGauge("figure.top_syscall_coverage", covered);
    report.registry().setGauge("figure.mean_reuse_distance",
                               reuse.overallMeanDistance());
    return 0;
}
