/**
 * @file
 * Figure 17 (appendix): software Draco vs Seccomp on the older
 * CentOS 7.6 / Linux 3.10 stack.
 *
 * Paper shape: software Draco's advantage is even larger than on the
 * new kernel because interpreted filters are so much more expensive,
 * while Draco's hash-and-probe path is kernel-version-insensitive.
 */

#include "common.hh"

using namespace draco;
using namespace draco::bench;

int
main(int argc, char **argv)
{
    BenchReport report("fig17_oldkernel_draco", argc, argv);
    ProfileCache cache;
    const os::KernelCosts &old = os::oldKernelCosts();

    auto column = [&](ProfileKind kind, sim::Mechanism mech) {
        return [&, kind, mech](const workload::AppModel &app) {
            return runExperiment(app, kind, mech, cache, old);
        };
    };

    using M = sim::Mechanism;
    printNormalizedFigure(
        "Figure 17: software Draco vs Seccomp on CentOS 7.6 / "
        "Linux 3.10 (normalized to insecure)",
        {
            {"noargs(Seccomp)", column(ProfileKind::Noargs, M::Seccomp)},
            {"noargs(DracoSW)", column(ProfileKind::Noargs, M::DracoSW)},
            {"complete(Seccomp)",
             column(ProfileKind::Complete, M::Seccomp)},
            {"complete(DracoSW)",
             column(ProfileKind::Complete, M::DracoSW)},
        },
        &report);
    return 0;
}
