/**
 * @file
 * Figure 16 (appendix): the Figure-2 experiment repeated on the older
 * CentOS 7.6 / Linux 3.10 stack — KPTI and Spectre mitigations enabled,
 * Seccomp filters running through the cBPF interpreter.
 *
 * Paper shape: Seccomp overheads rise substantially (several
 * pathological micro benchmarks in the 2.2×–4.3× range); the newer
 * kernel of Fig. 2 eliminates those. The appendix omits complete-2x.
 */

#include "common.hh"

using namespace draco;
using namespace draco::bench;

int
main(int argc, char **argv)
{
    BenchReport report("fig16_oldkernel_seccomp", argc, argv);
    ProfileCache cache;
    const os::KernelCosts &old = os::oldKernelCosts();

    auto column = [&](ProfileKind kind) {
        return [&, kind](const workload::AppModel &app) {
            sim::Mechanism mech = kind == ProfileKind::Insecure
                ? sim::Mechanism::Insecure
                : sim::Mechanism::Seccomp;
            return runExperiment(app, kind, mech, cache, old);
        };
    };

    printNormalizedFigure(
        "Figure 16: Seccomp overhead on CentOS 7.6 / Linux 3.10 "
        "(interpreter, KPTI+Spectre on; normalized to insecure)",
        {
            {"insecure", column(ProfileKind::Insecure)},
            {"docker-default", column(ProfileKind::DockerDefault)},
            {"syscall-noargs", column(ProfileKind::Noargs)},
            {"syscall-complete", column(ProfileKind::Complete)},
        },
        &report);
    return 0;
}
