/**
 * @file
 * Extension: server-consolidation experiment on the shared-L3 chip.
 *
 * Runs 1, 2, and 4 hardware-Draco workloads on co-scheduled cores and
 * reports each core's normalized execution time — whether the paper's
 * ≤1% hardware-Draco overhead survives L3 contention from noisy
 * neighbours.
 */

#include "common.hh"

#include "sim/multicore.hh"

using namespace draco;
using namespace draco::bench;

int
main(int argc, char **argv)
{
    BenchReport report("multicore_consolidation", argc, argv);
    const char *names[4] = {"nginx", "redis", "mysql", "pipe-ipc"};

    TextTable table("Multicore consolidation (hardware Draco, "
                    "syscall-complete, shared L3)");
    table.setHeader({"cores", "workload", "normalized", "slb-access%",
                     "fast-flows%"});

    for (unsigned count : {1u, 2u, 4u}) {
        std::vector<sim::CoreAssignment> cores;
        for (unsigned i = 0; i < count; ++i)
            cores.push_back(sim::CoreAssignment{
                workload::workloadByName(names[i]),
                sim::Mechanism::DracoHW, 1});

        sim::MulticoreOptions options;
        options.callsPerCore = benchCalls() / 3;
        options.warmupCallsPerCore = 10000;
        options.seed = kBenchSeed;
        if (benchTraceSession().enabled()) {
            options.session = &benchTraceSession();
            // Distinct per-run prefix: a track's clock must stay
            // monotonic, so the three runs never share tracks.
            options.trackPrefix =
                "cores" + std::to_string(count) + "/";
        }
        sim::MulticoreSimulator sim;
        auto results = sim.run(cores, options);

        for (size_t i = 0; i < results.size(); ++i) {
            results[i].exportMetrics(
                report.registry(),
                "runs.cores_" + std::to_string(count) + ".core_" +
                    std::to_string(i) + "_" +
                    MetricRegistry::sanitize(results[i].workload));
        }

        for (const auto &r : results) {
            double slb = r.slb.accesses
                ? 100.0 * r.slb.accessHits / r.slb.accesses
                : 0.0;
            uint64_t fast = r.hw.flows[0] + r.hw.flows[1] +
                r.hw.flows[3] + r.hw.flows[5];
            double fastPct = r.hw.syscalls
                ? 100.0 * fast / r.hw.syscalls
                : 0.0;
            table.addRow({std::to_string(count), r.workload,
                          TextTable::num(r.normalized(), 4),
                          TextTable::num(slb, 1),
                          TextTable::num(fastPct, 1)});
        }
    }
    table.print();

    std::printf("slow-flow VAT reads get slower under L3 contention, "
                "but fast flows dominate: the overhead stays small at "
                "density.\n");
    return 0;
}
