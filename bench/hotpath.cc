/**
 * @file
 * Native-speed check hot path: single-core checks/sec for the three
 * BPF execution tiers — the instruction-faithful interpreter
 * (`runInterpreted`), the decoded-array dispatcher (`runDecoded`), and
 * the shape-specialized executor (`run`, dense `(nr → action)` table
 * for linear chains, branch-free sorted-range binary search for
 * balanced trees).
 *
 * Sweep: filter shape (linear-chain / binary-tree) × allowlist size
 * (8 / 32 / 128 syscalls) × syscall mix (hot: every request hits an
 * allowed nr; cold: almost every request misses; mixed: 50/50). Every
 * cell replays one precomputed request buffer through all three tiers
 * and asserts a verdict checksum — action AND dynamic instruction
 * count folded per check — is identical across tiers before any number
 * is reported; a perf figure measured on diverging semantics is void.
 *
 * The artifact also records `bpf_insns_per_check`, the mean dynamic
 * cBPF instruction count per check. Each dynamic instruction costs a
 * conventional interpreter at least one data-dependent indirect branch,
 * so this is the branch-miss proxy the specialized tiers are judged
 * against: chains grow it linearly with allowlist size, trees
 * logarithmically, and the dense table's O(1) lookup sidesteps it
 * entirely.
 *
 * Headline figure gauges: `figure.speedup_chain` / `figure.speedup_tree`
 * — geometric-mean specialized-over-decoded throughput per shape
 * (acceptance: ≥2x chains, ≥1.5x trees). `bpf.shape.*` / `bpf.exec.*`
 * compile-time counters prove the specialized executors actually
 * engaged (CI greps them).
 */

#include "common.hh"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <vector>

#include "os/seccomp_abi.hh"
#include "seccomp/bpf.hh"
#include "seccomp/filter_builder.hh"
#include "seccomp/profile.hh"

using namespace draco;
using namespace draco::bench;

namespace {

/** Requests replayed per tier per cell (env DRACO_BENCH_CALLS). */
size_t
hotpathCalls()
{
    return std::max<size_t>(4096, benchCalls());
}

struct ShapeSpec {
    const char *name;
    seccomp::DispatchShape dispatch;
};

struct MixSpec {
    const char *name;
    double hitFraction; ///< Probability a request's nr is allowed.
};

/** Allowed syscall numbers for a cell: spaced so the chain's dense
 *  table is exercised with holes, not a contiguous prefix. */
std::vector<uint32_t>
allowedNrs(size_t count)
{
    std::vector<uint32_t> nrs;
    nrs.reserve(count);
    for (size_t i = 0; i < count; ++i)
        nrs.push_back(static_cast<uint32_t>(3 + 5 * i));
    return nrs;
}

seccomp::Profile
makeProfile(const std::vector<uint32_t> &nrs)
{
    seccomp::Profile profile("hotpath-" + std::to_string(nrs.size()));
    for (uint32_t nr : nrs)
        profile.allow(nr);
    return profile;
}

/** Precomputed request buffer for one (size, mix) coordinate. */
std::vector<os::SeccompData>
makeRequests(const std::vector<uint32_t> &nrs, const MixSpec &mix,
             uint64_t seed)
{
    Rng rng(seed);
    std::vector<os::SeccompData> reqs(hotpathCalls());
    for (os::SeccompData &req : reqs) {
        req = {};
        req.arch = os::kAuditArchX86_64;
        if (rng.chance(mix.hitFraction)) {
            req.nr = nrs[rng.nextBelow(nrs.size())];
        } else {
            // Misses span the dense-table range and beyond it, so the
            // default slot and the table's upper boundary both run.
            req.nr = static_cast<uint32_t>(
                rng.nextBelow(2 * nrs.back() + 64));
        }
        req.instruction_pointer = rng.next();
    }
    return reqs;
}

struct TierResult {
    double checksPerSec = 0.0;
    double nsPerCheck = 0.0;
    double insnsPerCheck = 0.0;
    uint64_t checksum = 0;
};

/**
 * Replay @p reqs through one tier. The checksum folds both the action
 * and the dynamic instruction count of every verdict, position-
 * dependently, so any cross-tier divergence — wrong verdict, wrong
 * count, reordering — changes it.
 */
template <typename RunFn>
TierResult
runTier(const std::vector<os::SeccompData> &reqs, RunFn &&run)
{
    TierResult tier;
    uint64_t insns = 0;
    uint64_t checksum = 0xcbf29ce484222325ULL;
    // Untimed warm-up: ramps the clock governor and faults the tables
    // in, so the first timed cell isn't charged for either.
    const size_t warm = std::min<size_t>(reqs.size(), 1 << 15);
    uint64_t sink = 0;
    for (size_t i = 0; i < warm; ++i)
        sink += run(reqs[i]).action;
    if (sink == 1) // Defeat dead-code elimination of the warm-up.
        std::fprintf(stderr, "hotpath: impossible warm-up checksum\n");
    const auto t0 = std::chrono::steady_clock::now();
    for (const os::SeccompData &req : reqs) {
        seccomp::BpfResult result = run(req);
        insns += result.insnsExecuted;
        checksum = checksum * 0x100000001b3ULL ^ result.action ^
                   (result.insnsExecuted << 32);
    }
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    tier.checksum = checksum;
    tier.insnsPerCheck =
        static_cast<double>(insns) / static_cast<double>(reqs.size());
    if (seconds > 0.0) {
        tier.checksPerSec =
            static_cast<double>(reqs.size()) / seconds;
        tier.nsPerCheck = seconds * 1e9 /
                          static_cast<double>(reqs.size());
    }
    return tier;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchReport report("hotpath", argc, argv);

    const ShapeSpec shapes[] = {
        {"chain", seccomp::DispatchShape::LinearChain},
        {"tree", seccomp::DispatchShape::BinaryTree},
    };
    const size_t sizes[] = {8, 32, 128};
    const MixSpec mixes[] = {
        {"hot", 1.0},
        {"mixed", 0.5},
        {"cold", 0.05},
    };

    TextTable table("BPF check hot path (single core, " +
                    std::to_string(hotpathCalls()) + " checks/tier)");
    table.setHeader({"shape", "rules", "mix", "executor", "interp/s",
                     "decoded/s", "specialized/s", "spec-vs-dec",
                     "insns/check"});

    // Geometric means of specialized-over-decoded throughput per shape.
    double logSpeedup[2] = {0.0, 0.0};
    int cellsPerShape[2] = {0, 0};

    for (size_t s = 0; s < std::size(shapes); ++s) {
        const ShapeSpec &shape = shapes[s];
        for (size_t rules : sizes) {
            const std::vector<uint32_t> nrs = allowedNrs(rules);
            const seccomp::Profile profile = makeProfile(nrs);
            seccomp::BpfProgram program =
                seccomp::buildFilter(profile, shape.dispatch);
            for (const MixSpec &mix : mixes) {
                const std::vector<os::SeccompData> reqs = makeRequests(
                    nrs, mix,
                    splitSeed(splitSeed(kBenchSeed, shape.name),
                              splitSeed(rules, mix.name)));

                TierResult interp = runTier(
                    reqs, [&](const os::SeccompData &d) {
                        return program.runInterpreted(d);
                    });
                TierResult decoded = runTier(
                    reqs, [&](const os::SeccompData &d) {
                        return program.runDecoded(d);
                    });
                TierResult specialized = runTier(
                    reqs, [&](const os::SeccompData &d) {
                        return program.run(d);
                    });

                // Verdict equivalence gates every reported number.
                if (interp.checksum != decoded.checksum ||
                    interp.checksum != specialized.checksum)
                    fatal("hotpath: tier verdicts diverged on "
                          "%s/%zu/%s",
                          shape.name, rules, mix.name);

                const double speedup =
                    decoded.checksPerSec > 0.0
                        ? specialized.checksPerSec /
                              decoded.checksPerSec
                        : 0.0;
                if (speedup > 0.0) {
                    logSpeedup[s] += std::log(speedup);
                    ++cellsPerShape[s];
                }

                table.addRow(
                    {shape.name, std::to_string(rules), mix.name,
                     seccomp::bpfExecutorName(program.executor()),
                     TextTable::num(interp.checksPerSec, 0),
                     TextTable::num(decoded.checksPerSec, 0),
                     TextTable::num(specialized.checksPerSec, 0),
                     TextTable::num(speedup, 2),
                     TextTable::num(interp.insnsPerCheck, 1)});

                const std::string prefix = MetricRegistry::join(
                    "sweep",
                    std::string(shape.name) + ".n" +
                        std::to_string(rules) + "." + mix.name);
                MetricRegistry &registry = report.registry();
                registry.setText(
                    MetricRegistry::join(prefix, "shape"),
                    seccomp::bpfShapeName(program.shape()));
                registry.setText(
                    MetricRegistry::join(prefix, "executor"),
                    seccomp::bpfExecutorName(program.executor()));
                registry.setGauge(
                    MetricRegistry::join(prefix, "bpf_insns_per_check"),
                    interp.insnsPerCheck);
                registry.setCounter(
                    MetricRegistry::join(prefix, "verdict_checksum"),
                    interp.checksum);
                const struct {
                    const char *name;
                    const TierResult *tier;
                } tiers[] = {{"interpreted", &interp},
                             {"decoded", &decoded},
                             {"specialized", &specialized}};
                for (const auto &[tierName, tier] : tiers) {
                    const std::string tp =
                        MetricRegistry::join(prefix, tierName);
                    registry.setGauge(
                        MetricRegistry::join(tp, "checks_per_sec"),
                        tier->checksPerSec);
                    registry.setGauge(
                        MetricRegistry::join(tp, "ns_per_check"),
                        tier->nsPerCheck);
                }
                registry.setGauge(
                    MetricRegistry::join(prefix, "speedup_vs_decoded"),
                    speedup);
            }
        }
    }

    for (size_t s = 0; s < std::size(shapes); ++s) {
        const double geomean =
            cellsPerShape[s]
                ? std::exp(logSpeedup[s] / cellsPerShape[s])
                : 0.0;
        report.registry().setGauge(
            std::string("figure.speedup_") + shapes[s].name, geomean);
    }

    // Shape/executor scoreboard: proves the specialized tiers engaged
    // in this very process (CI asserts dense + ranges are nonzero).
    seccomp::exportBpfCompileMetrics(report.registry(), "bpf");

    table.print();
    std::printf("checks/sec are wall-clock and host-dependent; the "
                "verdict checksums and the bpf.* scoreboard are "
                "deterministic.\n");
    return 0;
}
