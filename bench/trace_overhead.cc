/**
 * @file
 * Observability tax: wall-clock cost of the event tracer on a fixed
 * hardware-Draco sweep, in three configurations — tracing off, telemetry
 * sampling only, and full event recording.
 *
 * The paper's argument for Draco is that checking must be cheap enough
 * to leave on; the same bar applies to the simulator's own telemetry.
 * The artifact records seconds per configuration plus the relative
 * slowdown over the untraced baseline, so regressions in the record()
 * hot path show up in BENCH_trace_overhead.json diffs.
 */

#include "common.hh"

#include <chrono>

using namespace draco;
using namespace draco::bench;

namespace {

/** One timed sweep: every workload under syscall-complete DracoHW. */
double
timedSweep(obs::TraceSession *session, ProfileCache &cache,
           uint64_t &events)
{
    auto start = std::chrono::steady_clock::now();
    for (const workload::AppModel *app : benchWorkloads()) {
        sim::RunOptions options;
        options.mechanism = sim::Mechanism::DracoHW;
        options.steadyCalls = benchCalls() / 2;
        options.seed = workloadSeed(*app);
        if (session)
            options.tracer = session->tracer(app->name);
        sim::ExperimentRunner runner;
        runner.run(*app, cache.get(*app).complete, options);
    }
    auto end = std::chrono::steady_clock::now();
    events = session ? session->totalEvents() + session->totalSamples()
                     : 0;
    return std::chrono::duration<double>(end - start).count();
}

} // namespace

int
main(int argc, char **argv)
{
    BenchReport report("trace_overhead", argc, argv);
    ProfileCache cache;

    TextTable table("Tracer overhead (hardware Draco sweep, "
                    "wall-clock)");
    table.setHeader({"configuration", "seconds", "vs off",
                     "events+samples"});

    struct Config {
        const char *name;
        bool trace;          ///< Run with a session at all.
        bool recordEvents;   ///< Session records discrete events.
        uint64_t sampleEvery;///< Telemetry interval (cycles).
    };
    const Config configs[] = {
        {"tracing-off", false, false, 0},
        {"sampler-only", true, false, 50000},
        {"full-tracing", true, true, 50000},
    };

    // Warm the profile cache (and the CPU) outside the timed region so
    // the first configuration doesn't pay profile generation.
    for (const workload::AppModel *app : benchWorkloads())
        cache.get(*app);

    double offSeconds = 0.0;
    for (const Config &config : configs) {
        obs::TraceSession session;
        if (config.trace) {
            obs::SessionConfig sc;
            sc.outPath = "unused.devt"; // Never written; export is
                                        // not part of the hot path.
            sc.tracer.recordEvents = config.recordEvents;
            sc.tracer.sampleEveryCycles = config.sampleEvery;
            session.configure(sc);
        }

        uint64_t events = 0;
        double seconds = timedSweep(
            config.trace ? &session : nullptr, cache, events);
        if (!config.trace)
            offSeconds = seconds;
        double ratio = offSeconds > 0.0 ? seconds / offSeconds : 1.0;

        std::string prefix = MetricRegistry::join(
            "overhead", MetricRegistry::sanitize(config.name));
        report.registry().setGauge(
            MetricRegistry::join(prefix, "seconds"), seconds);
        report.registry().setGauge(
            MetricRegistry::join(prefix, "vs_off"), ratio);
        report.registry().setCounter(
            MetricRegistry::join(prefix, "events"), events);

        table.addRow({config.name, TextTable::num(seconds, 3),
                      TextTable::num(ratio, 3),
                      std::to_string(events)});
    }
    table.print();

    std::printf("the disabled path is a null-pointer check per "
                "instrumentation site; full tracing pays one ring "
                "store per event.\n");
    return 0;
}
