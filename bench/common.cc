#include "common.hh"

#include <cstdio>
#include <cstdlib>

namespace draco::bench {

size_t
benchCalls()
{
    static const size_t calls = [] {
        const char *env = std::getenv("DRACO_BENCH_CALLS");
        if (env) {
            long v = std::atol(env);
            if (v > 0)
                return static_cast<size_t>(v);
            warn("ignoring invalid DRACO_BENCH_CALLS='%s'", env);
        }
        return static_cast<size_t>(150000);
    }();
    return calls;
}

const char *
profileKindName(ProfileKind kind)
{
    switch (kind) {
      case ProfileKind::Insecure: return "insecure";
      case ProfileKind::DockerDefault: return "docker-default";
      case ProfileKind::Noargs: return "syscall-noargs";
      case ProfileKind::Complete: return "syscall-complete";
      case ProfileKind::Complete2x: return "syscall-complete-2x";
    }
    return "?";
}

BenchReport::BenchReport(const std::string &name, int argc, char **argv)
    : _name(name)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--json" && i + 1 < argc) {
            _path = argv[i + 1];
            break;
        }
        if (arg.rfind("--json=", 0) == 0) {
            _path = arg.substr(7);
            break;
        }
    }
    if (_path.empty()) {
        if (const char *dir = std::getenv("DRACO_BENCH_JSON"); dir && *dir)
            _path = std::string(dir) + "/BENCH_" + _name + ".json";
    }
    _registry.setText("bench.name", _name);
    _registry.setCounter("bench.schema_version", 1);
    _registry.setCounter("bench.calls", benchCalls());
    _registry.setCounter("bench.seed", kBenchSeed);
}

BenchReport::~BenchReport()
{
    write();
}

void
BenchReport::record(const std::string &prefix,
                    const sim::RunResult &result)
{
    result.exportMetrics(_registry,
                         MetricRegistry::join("runs", prefix));
}

void
BenchReport::write()
{
    if (_path.empty() || _written)
        return;
    _registry.writeJsonFile(_path);
    std::printf("\nwrote %s\n", _path.c_str());
    _written = true;
}

const sim::AppProfiles &
ProfileCache::get(const workload::AppModel &app)
{
    auto it = _cache.find(app.name);
    if (it == _cache.end()) {
        it = _cache
                 .emplace(app.name,
                          sim::makeAppProfiles(app, kBenchSeed, 300000))
                 .first;
    }
    return it->second;
}

sim::RunResult
runExperiment(const workload::AppModel &app, ProfileKind kind,
              sim::Mechanism mechanism, ProfileCache &cache,
              const os::KernelCosts &costs)
{
    sim::RunOptions options;
    options.mechanism = mechanism;
    options.costs = &costs;
    options.steadyCalls = benchCalls();
    options.seed = kBenchSeed;

    static const seccomp::Profile insecure = seccomp::insecureProfile();
    static const seccomp::Profile docker =
        seccomp::dockerDefaultProfile();

    const seccomp::Profile *profile = &insecure;
    switch (kind) {
      case ProfileKind::Insecure:
        options.mechanism = sim::Mechanism::Insecure;
        break;
      case ProfileKind::DockerDefault:
        profile = &docker;
        break;
      case ProfileKind::Noargs:
        profile = &cache.get(app).noargs;
        break;
      case ProfileKind::Complete:
        profile = &cache.get(app).complete;
        break;
      case ProfileKind::Complete2x:
        profile = &cache.get(app).complete;
        options.filterCopies = 2;
        break;
    }

    sim::ExperimentRunner runner;
    return runner.run(app, *profile, options);
}

const std::vector<const workload::AppModel *> &
benchWorkloads()
{
    static const std::vector<const workload::AppModel *> apps = [] {
        std::vector<const workload::AppModel *> out;
        for (const auto &app : workload::allWorkloads())
            out.push_back(&app);
        return out;
    }();
    return apps;
}

void
printNormalizedFigure(
    const std::string &title,
    const std::vector<std::pair<
        std::string,
        std::function<sim::RunResult(const workload::AppModel &)>>>
        &columns,
    BenchReport *report)
{
    TextTable table(title);
    std::vector<std::string> header = {"workload"};
    for (const auto &[label, fn] : columns)
        header.push_back(label);
    table.setHeader(header);

    std::vector<RunningStat> macroStats(columns.size());
    std::vector<RunningStat> microStats(columns.size());

    for (const auto *app : benchWorkloads()) {
        std::vector<std::string> row = {app->name};
        for (size_t c = 0; c < columns.size(); ++c) {
            sim::RunResult result = columns[c].second(*app);
            double v = result.normalized();
            (app->isMacro ? macroStats[c] : microStats[c]).add(v);
            row.push_back(TextTable::num(v, 3));
            if (report) {
                report->record(
                    MetricRegistry::join(
                        MetricRegistry::sanitize(columns[c].first),
                        MetricRegistry::sanitize(app->name)),
                    result);
            }
        }
        table.addRow(row);
    }

    auto addAverage = [&](const char *label,
                          const std::vector<RunningStat> &stats) {
        std::vector<std::string> row = {label};
        for (const auto &s : stats)
            row.push_back(TextTable::num(s.mean(), 3));
        table.addRow(row);
    };
    addAverage("average-macro", macroStats);
    addAverage("average-micro", microStats);

    if (report) {
        for (size_t c = 0; c < columns.size(); ++c) {
            std::string col = MetricRegistry::join(
                "figure", MetricRegistry::sanitize(columns[c].first));
            report->registry().setGauge(
                MetricRegistry::join(col, "average_macro"),
                macroStats[c].mean());
            report->registry().setGauge(
                MetricRegistry::join(col, "average_micro"),
                microStats[c].mean());
        }
    }

    table.print();
}

} // namespace draco::bench
