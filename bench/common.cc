#include "common.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "buildinfo.hh"
#include "hash/crc64.hh"
#include "support/cliflags.hh"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#include <cpuid.h>
#define DRACO_BENCH_CPUID 1
#endif

namespace draco::bench {

size_t
benchCalls()
{
    static const size_t calls = [] {
        const char *env = std::getenv("DRACO_BENCH_CALLS");
        if (env) {
            long v = std::atol(env);
            if (v > 0)
                return static_cast<size_t>(v);
            warn("ignoring invalid DRACO_BENCH_CALLS='%s'", env);
        }
        return static_cast<size_t>(150000);
    }();
    return calls;
}

namespace {

/** Thread count requested via `--threads N` (0: not given). */
unsigned threadsArg = 0;

/** Sample interval requested via `--sample-every N` (0: not given). */
uint64_t sampleEveryArg = 0;

/**
 * Enable benchTraceSession() from the parsed `--trace-out` /
 * `--sample-every` values (env fallbacks DRACO_TRACE_OUT /
 * DRACO_TRACE_SAMPLE_EVERY). Later BenchReports in the same process
 * reuse the already-configured session.
 */
void
configureTraceSession(std::string outPath)
{
    if (outPath.empty()) {
        if (const char *env = std::getenv("DRACO_TRACE_OUT");
            env && *env)
            outPath = env;
    }
    if (sampleEveryArg == 0) {
        if (const char *env = std::getenv("DRACO_TRACE_SAMPLE_EVERY");
            env && *env) {
            long long v = std::atoll(env);
            if (v > 0)
                sampleEveryArg = static_cast<uint64_t>(v);
            else
                warn("ignoring invalid DRACO_TRACE_SAMPLE_EVERY='%s'",
                     env);
        }
    }
    if (outPath.empty()) {
        if (sampleEveryArg)
            warn("ignoring --sample-every without --trace-out");
        return;
    }
    if (benchTraceSession().enabled())
        return;
    obs::SessionConfig config;
    config.outPath = outPath;
    config.tracer.sampleEveryCycles = sampleEveryArg;
    benchTraceSession().configure(config);
}

/**
 * CPU brand string from CPUID leaves 0x80000002..4 ("AMD EPYC 7..."),
 * whitespace-normalized. "unknown" off x86 or on very old CPUs.
 */
std::string
cpuBrandString()
{
#ifdef DRACO_BENCH_CPUID
    unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
    if (__get_cpuid(0x80000000u, &eax, &ebx, &ecx, &edx) &&
        eax >= 0x80000004u) {
        unsigned regs[12] = {};
        for (unsigned i = 0; i < 3; ++i)
            __get_cpuid(0x80000002u + i, &regs[4 * i + 0],
                        &regs[4 * i + 1], &regs[4 * i + 2],
                        &regs[4 * i + 3]);
        char raw[sizeof(regs) + 1] = {};
        std::memcpy(raw, regs, sizeof(regs));
        std::string brand;
        for (const char *p = raw; *p; ++p) {
            if (*p == ' ' && (brand.empty() || brand.back() == ' '))
                continue;
            brand.push_back(*p);
        }
        while (!brand.empty() && brand.back() == ' ')
            brand.pop_back();
        if (!brand.empty())
            return brand;
    }
#endif
    return "unknown";
}

/**
 * Stamp compiler/flags/CPU attribution into a report registry. Every
 * value here is independent of thread count and run parameters, so the
 * byte-identical-at-any---threads contract still holds.
 */
void
recordBuildInfo(MetricRegistry &registry)
{
    registry.setText("build.compiler", DRACO_BUILD_COMPILER);
    registry.setText("build.type", DRACO_BUILD_TYPE);
    registry.setText("build.flags", DRACO_BUILD_CXX_FLAGS);
    registry.setText("cpu.brand", cpuBrandString());
#ifdef DRACO_BENCH_CPUID
    registry.setCounter("cpu.sse42",
                        __builtin_cpu_supports("sse4.2") ? 1 : 0);
    registry.setCounter("cpu.pclmul",
                        __builtin_cpu_supports("pclmul") ? 1 : 0);
#else
    registry.setCounter("cpu.sse42", 0);
    registry.setCounter("cpu.pclmul", 0);
#endif
    registry.setText("build.crc64_engine", crc64EngineName());
}

} // namespace

obs::TraceSession &
benchTraceSession()
{
    static obs::TraceSession session;
    return session;
}

unsigned
benchThreads()
{
    if (threadsArg)
        return threadsArg;
    static const unsigned fromEnv = [] {
        const char *env = std::getenv("DRACO_BENCH_THREADS");
        if (env) {
            long v = std::atol(env);
            if (v > 0)
                return static_cast<unsigned>(v);
            warn("ignoring invalid DRACO_BENCH_THREADS='%s'", env);
        }
        return 0u;
    }();
    if (fromEnv)
        return fromEnv;
    return support::ThreadPool::hardwareConcurrency();
}

const char *
profileKindName(ProfileKind kind)
{
    switch (kind) {
      case ProfileKind::Insecure: return "insecure";
      case ProfileKind::DockerDefault: return "docker-default";
      case ProfileKind::Noargs: return "syscall-noargs";
      case ProfileKind::Complete: return "syscall-complete";
      case ProfileKind::Complete2x: return "syscall-complete-2x";
    }
    return "?";
}

uint64_t
workloadSeed(const workload::AppModel &app)
{
    return splitSeed(kBenchSeed, app.name);
}

BenchReport::BenchReport(const std::string &name, int argc, char **argv)
    : _name(name)
{
    // Lenient parse: bench binaries layer their own argv handling on
    // top of the common flags, so unknown tokens pass through and
    // malformed values of known flags warn and keep their defaults.
    support::CliFlags flags(_name);
    flags.addCommon();
    flags.parse(argc, argv, /*lenient=*/true);
    if (flags.given("json"))
        _path = flags.str("json");
    if (flags.given("threads"))
        threadsArg = static_cast<unsigned>(flags.uintValue("threads"));
    if (flags.given("sample-every"))
        sampleEveryArg = flags.uintValue("sample-every");
    configureTraceSession(flags.str("trace-out"));
    if (_path.empty()) {
        if (const char *dir = std::getenv("DRACO_BENCH_JSON"); dir && *dir)
            _path = std::string(dir) + "/BENCH_" + _name + ".json";
    }
    // The thread count is deliberately NOT recorded: the artifact must
    // be byte-identical at any --threads value.
    _registry.setText("bench.name", _name);
    _registry.setCounter("bench.schema_version", 1);
    _registry.setCounter("bench.calls", benchCalls());
    _registry.setCounter("bench.seed", kBenchSeed);
    recordBuildInfo(_registry);
}

BenchReport::~BenchReport()
{
    write();
}

void
BenchReport::record(const std::string &prefix,
                    const sim::RunResult &result)
{
    std::lock_guard<std::mutex> lock(_mutex);
    result.exportMetrics(_registry,
                         MetricRegistry::join("runs", prefix));
}

void
BenchReport::mergeShard(const MetricRegistry &shard)
{
    std::lock_guard<std::mutex> lock(_mutex);
    _registry.merge(shard);
}

void
BenchReport::write()
{
    std::lock_guard<std::mutex> lock(_mutex);
    if (_written)
        return;
    _written = true;

    // The trace artifact is independent of the JSON one: `--trace-out`
    // without `--json` still exports the trace.
    obs::TraceSession &session = benchTraceSession();
    if (session.enabled()) {
        session.exportMetrics(_registry, "obs");
        if (session.writeOutput())
            std::printf("\nwrote %s (%llu events)\n",
                        session.outPath().c_str(),
                        static_cast<unsigned long long>(
                            session.totalEvents()));
    }

    if (_path.empty())
        return;
    if (_registry.tryWriteJsonFile(_path))
        std::printf("\nwrote %s\n", _path.c_str());
    else
        std::fprintf(stderr,
                     "error: failed to write bench report '%s'\n",
                     _path.c_str());
}

const sim::AppProfiles &
ProfileCache::get(const workload::AppModel &app)
{
    Entry *entry;
    bool owner;
    {
        std::lock_guard<std::mutex> lock(_mutex);
        auto [it, inserted] = _cache.try_emplace(app.name);
        entry = &it->second;
        owner = inserted;
        if (inserted)
            entry->done = entry->ready.get_future().share();
    }
    if (owner) {
        // Same seed as runExperiment's measurement trace, so the
        // 300k-call profiling trace is a superset of any measured run.
        entry->profiles.emplace(
            sim::makeAppProfiles(app, workloadSeed(app), 300000));
        entry->ready.set_value();
    } else {
        entry->done.wait();
    }
    return *entry->profiles;
}

void
recordCell(MetricRegistry &shard, const std::string &prefix,
           const sim::RunResult &result)
{
    result.exportMetrics(shard, MetricRegistry::join("runs", prefix));
}

void
parallelCells(size_t cells,
              const std::function<void(size_t, MetricRegistry &)> &cell,
              BenchReport *report)
{
    if (cells == 0)
        return;

    // Each cell records into its own shard; merging happens once, in
    // index order, after the sweep drains — so the merged registry is
    // independent of worker count and scheduling.
    std::vector<MetricRegistry> shards(cells);
    unsigned workers = static_cast<unsigned>(
        std::min<size_t>(benchThreads(), cells));
    support::ThreadPool pool(workers);
    pool.parallelFor(cells,
                     [&](size_t i) { cell(i, shards[i]); });

    if (report)
        for (const MetricRegistry &shard : shards)
            report->mergeShard(shard);
}

sim::RunResult
runExperiment(const workload::AppModel &app, ProfileKind kind,
              sim::Mechanism mechanism, ProfileCache &cache,
              const os::KernelCosts &costs)
{
    sim::RunOptions options;
    options.mechanism = mechanism;
    options.costs = &costs;
    options.steadyCalls = benchCalls();
    // Per-workload trace stream, shared by every (kind, mechanism)
    // column so they all replay byte-identical syscalls; the auxiliary
    // timing streams (ROB sampling, cache noise) split further per
    // cell so concurrent sweep cells never share generator state.
    options.seed = workloadSeed(app);
    options.auxSeed =
        splitSeed(splitSeed(options.seed, static_cast<uint64_t>(kind)),
                  static_cast<uint64_t>(mechanism));

    static const seccomp::Profile insecure = seccomp::insecureProfile();
    static const seccomp::Profile docker =
        seccomp::dockerDefaultProfile();

    const seccomp::Profile *profile = &insecure;
    switch (kind) {
      case ProfileKind::Insecure:
        options.mechanism = sim::Mechanism::Insecure;
        break;
      case ProfileKind::DockerDefault:
        profile = &docker;
        break;
      case ProfileKind::Noargs:
        profile = &cache.get(app).noargs;
        break;
      case ProfileKind::Complete:
        profile = &cache.get(app).complete;
        break;
      case ProfileKind::Complete2x:
        profile = &cache.get(app).complete;
        options.filterCopies = 2;
        break;
    }

    // One track per sweep cell, named by its coordinates, so export
    // order (name-sorted) is independent of scheduling.
    options.tracer = benchTraceSession().tracer(
        std::string(profileKindName(kind)) + "/" +
        sim::mechanismName(options.mechanism) + "/" + app.name);

    sim::ExperimentRunner runner;
    return runner.run(app, *profile, options);
}

const std::vector<const workload::AppModel *> &
benchWorkloads()
{
    static const std::vector<const workload::AppModel *> apps = [] {
        std::vector<const workload::AppModel *> out;
        for (const auto &app : workload::allWorkloads())
            out.push_back(&app);
        return out;
    }();
    return apps;
}

void
printNormalizedFigure(
    const std::string &title,
    const std::vector<std::pair<
        std::string,
        std::function<sim::RunResult(const workload::AppModel &)>>>
        &columns,
    BenchReport *report)
{
    const auto &apps = benchWorkloads();
    const size_t cols = columns.size();

    // One cell per (workload, column); each writes only its own slot.
    std::vector<sim::RunResult> results(apps.size() * cols);
    parallelCells(
        results.size(),
        [&](size_t idx, MetricRegistry &shard) {
            size_t w = idx / cols;
            size_t c = idx % cols;
            sim::RunResult result = columns[c].second(*apps[w]);
            if (report) {
                recordCell(
                    shard,
                    MetricRegistry::join(
                        MetricRegistry::sanitize(columns[c].first),
                        MetricRegistry::sanitize(apps[w]->name)),
                    result);
            }
            results[idx] = std::move(result);
        },
        report);

    TextTable table(title);
    std::vector<std::string> header = {"workload"};
    for (const auto &[label, fn] : columns)
        header.push_back(label);
    table.setHeader(header);

    std::vector<RunningStat> macroStats(cols);
    std::vector<RunningStat> microStats(cols);

    for (size_t w = 0; w < apps.size(); ++w) {
        std::vector<std::string> row = {apps[w]->name};
        for (size_t c = 0; c < cols; ++c) {
            double v = results[w * cols + c].normalized();
            (apps[w]->isMacro ? macroStats[c] : microStats[c]).add(v);
            row.push_back(TextTable::num(v, 3));
        }
        table.addRow(row);
    }

    auto addAverage = [&](const char *label,
                          const std::vector<RunningStat> &stats) {
        std::vector<std::string> row = {label};
        for (const auto &s : stats)
            row.push_back(TextTable::num(s.mean(), 3));
        table.addRow(row);
    };
    addAverage("average-macro", macroStats);
    addAverage("average-micro", microStats);

    if (report) {
        for (size_t c = 0; c < cols; ++c) {
            std::string col = MetricRegistry::join(
                "figure", MetricRegistry::sanitize(columns[c].first));
            report->registry().setGauge(
                MetricRegistry::join(col, "average_macro"),
                macroStats[c].mean());
            report->registry().setGauge(
                MetricRegistry::join(col, "average_micro"),
                microStats[c].mean());
        }
    }

    table.print();
}

} // namespace draco::bench
