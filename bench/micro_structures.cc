/**
 * @file
 * google-benchmark microbenches of the core data structures: CRC
 * hashing, cuckoo/VAT probes, SLB/STB lookups, BPF filter execution,
 * and the end-to-end per-syscall check of each mechanism.
 */

#include <benchmark/benchmark.h>

#include "common.hh"
#include "draco/draco.hh"

using namespace draco;

namespace {

/**
 * Console reporter that additionally records every run's per-iteration
 * real time into the bench registry as `micro.<name>.ns_per_op`.
 */
class RegistryReporter : public benchmark::ConsoleReporter
{
  public:
    explicit RegistryReporter(MetricRegistry &registry)
        : _registry(registry)
    {
    }

    void ReportRuns(const std::vector<Run> &runs) override
    {
        for (const Run &run : runs) {
            if (run.error_occurred)
                continue;
            std::string prefix = MetricRegistry::join(
                "micro", MetricRegistry::sanitize(run.benchmark_name()));
            _registry.setGauge(
                MetricRegistry::join(prefix, "ns_per_op"),
                run.GetAdjustedRealTime());
            _registry.setCounter(
                MetricRegistry::join(prefix, "iterations"),
                static_cast<uint64_t>(run.iterations));
        }
        ConsoleReporter::ReportRuns(runs);
    }

  private:
    MetricRegistry &_registry;
};

core::ArgKey
sampleKey(uint64_t fd, uint64_t count)
{
    seccomp::ArgVector args{};
    args[0] = fd;
    args[2] = count;
    const auto *desc = os::syscallById(os::sc::read);
    return core::ArgKey(desc->argumentBitmask(), args);
}

void
BM_Crc64(benchmark::State &state)
{
    std::vector<uint8_t> buf(state.range(0), 0xa5);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            crc64Ecma().compute(buf.data(), buf.size()));
}
BENCHMARK(BM_Crc64)->Arg(8)->Arg(12)->Arg(48);

void
BM_Mix64(benchmark::State &state)
{
    uint64_t x = 0x12345678;
    for (auto _ : state) {
        x = mix64(x);
        benchmark::DoNotOptimize(x);
    }
}
BENCHMARK(BM_Mix64);

void
BM_VatHash(benchmark::State &state)
{
    core::ArgKey key = sampleKey(3, 4096);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            core::vatHash(CuckooWay::H1, key) ^
            core::vatHash(CuckooWay::H2, key));
}
BENCHMARK(BM_VatHash);

void
BM_VatLookupHit(benchmark::State &state)
{
    core::Vat vat;
    const auto *desc = os::syscallById(os::sc::read);
    vat.configure(os::sc::read, desc->argumentBitmask(), 64);
    for (uint64_t i = 0; i < 64; ++i)
        vat.insert(os::sc::read, sampleKey(3 + i, 4096));
    core::ArgKey key = sampleKey(10, 4096);
    for (auto _ : state)
        benchmark::DoNotOptimize(vat.lookup(os::sc::read, key));
}
BENCHMARK(BM_VatLookupHit);

void
BM_SlbAccessHit(benchmark::State &state)
{
    core::Slb slb;
    core::ArgKey key = sampleKey(3, 4096);
    slb.fill(2, os::sc::read, core::VatToken{CuckooWay::H1, 42}, key);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            slb.accessLookup(2, os::sc::read, key));
}
BENCHMARK(BM_SlbAccessHit);

void
BM_StbLookupHit(benchmark::State &state)
{
    core::Stb stb;
    stb.update(0x400800, os::sc::read, core::VatToken{});
    for (auto _ : state)
        benchmark::DoNotOptimize(stb.lookup(0x400800));
}
BENCHMARK(BM_StbLookupHit);

seccomp::Profile
benchProfile()
{
    const auto *app = workload::workloadByName("nginx");
    workload::TraceGenerator gen(*app, 7);
    seccomp::ProfileRecorder rec;
    for (int i = 0; i < 50000; ++i)
        rec.record(gen.next().req);
    return rec.makeComplete("bench");
}

void
BM_SeccompFilterRun(benchmark::State &state)
{
    seccomp::Profile profile = benchProfile();
    seccomp::FilterChain chain = seccomp::buildFilterChain(profile);
    const auto *app = workload::workloadByName("nginx");
    workload::TraceGenerator gen(*app, 9);
    std::vector<os::SeccompData> data;
    for (int i = 0; i < 1024; ++i)
        data.push_back(gen.next().req.toSeccompData());
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(chain.run(data[i++ & 1023]));
    }
}
BENCHMARK(BM_SeccompFilterRun);

void
BM_BpfInterpreted(benchmark::State &state)
{
    // Reference interpreter vs the pre-decoded dispatcher below, same
    // program and inputs: the per-instruction decode/bounds work the
    // compile() pass removes.
    seccomp::BpfProgram filter =
        seccomp::buildFilter(seccomp::dockerDefaultProfile());
    const auto *app = workload::workloadByName("nginx");
    workload::TraceGenerator gen(*app, 9);
    std::vector<os::SeccompData> data;
    for (int i = 0; i < 1024; ++i)
        data.push_back(gen.next().req.toSeccompData());
    size_t i = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(filter.runInterpreted(data[i++ & 1023]));
}
BENCHMARK(BM_BpfInterpreted);

void
BM_BpfDecoded(benchmark::State &state)
{
    seccomp::BpfProgram filter =
        seccomp::buildFilter(seccomp::dockerDefaultProfile());
    const auto *app = workload::workloadByName("nginx");
    workload::TraceGenerator gen(*app, 9);
    std::vector<os::SeccompData> data;
    for (int i = 0; i < 1024; ++i)
        data.push_back(gen.next().req.toSeccompData());
    size_t i = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(filter.run(data[i++ & 1023]));
}
BENCHMARK(BM_BpfDecoded);

void
BM_DracoSwCheck(benchmark::State &state)
{
    seccomp::Profile profile = benchProfile();
    core::DracoSoftwareChecker checker(profile);
    const auto *app = workload::workloadByName("nginx");
    workload::TraceGenerator gen(*app, 9);
    std::vector<os::SyscallRequest> reqs;
    for (int i = 0; i < 1024; ++i)
        reqs.push_back(gen.next().req);
    for (const auto &req : reqs)
        checker.check(req); // warm the VAT
    size_t i = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(checker.check(reqs[i++ & 1023]));
}
BENCHMARK(BM_DracoSwCheck);

void
BM_DracoHwOnSyscall(benchmark::State &state)
{
    seccomp::Profile profile = benchProfile();
    core::HwProcessContext proc(profile);
    core::DracoHardwareEngine engine;
    engine.switchTo(&proc);
    const auto *app = workload::workloadByName("nginx");
    workload::TraceGenerator gen(*app, 9);
    std::vector<os::SyscallRequest> reqs;
    for (int i = 0; i < 1024; ++i)
        reqs.push_back(gen.next().req);
    for (const auto &req : reqs)
        engine.onSyscall(req); // warm all structures
    size_t i = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(engine.onSyscall(reqs[i++ & 1023]));
}
BENCHMARK(BM_DracoHwOnSyscall);

void
BM_TraceGeneratorNext(benchmark::State &state)
{
    const auto *app = workload::workloadByName("elasticsearch");
    workload::TraceGenerator gen(*app, 11);
    for (auto _ : state)
        benchmark::DoNotOptimize(gen.next());
}
BENCHMARK(BM_TraceGeneratorNext);

} // namespace

int
main(int argc, char **argv)
{
    // BenchReport consumes --json; google-benchmark ignores flags that
    // don't start with --benchmark_.
    bench::BenchReport report("micro_structures", argc, argv);
    benchmark::Initialize(&argc, argv);
    RegistryReporter reporter(report.registry());
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();
    return 0;
}
