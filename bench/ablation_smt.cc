/**
 * @file
 * Ablation: SMT partitioning (§VII-B).
 *
 * With N hardware contexts, each context owns 1/N of the SLB/STB/SPT.
 * This bench runs the same workload on one context of a 1-, 2-, and
 * 4-context core and reports how the shrunken partition affects hit
 * rates — the capacity cost of the paper's side-channel-free SMT
 * design.
 */

#include "common.hh"

using namespace draco;
using namespace draco::bench;

int
main(int argc, char **argv)
{
    BenchReport report("ablation_smt", argc, argv);
    ProfileCache cache;

    TextTable table("SMT partitioning ablation (hit rates on one "
                    "context, syscall-complete)");
    table.setHeader({"workload", "contexts", "slb-ways", "stb-entries",
                     "stb-hit", "slb-access", "fast-flows"});

    const char *names[] = {"nginx", "elasticsearch", "redis",
                           "pipe-ipc"};
    const unsigned contextCounts[] = {1u, 2u, 4u};
    const size_t nContexts = std::size(contextCounts);
    std::vector<std::vector<std::string>> rows(std::size(names) *
                                               nContexts);
    parallelCells(
        rows.size(),
        [&](size_t idx, MetricRegistry &shard) {
            const char *name = names[idx / nContexts];
            unsigned contexts = contextCounts[idx % nContexts];
            const auto *app = workload::workloadByName(name);
            const auto &profile = cache.get(*app).complete;

            core::EngineGeometry geom =
                core::EngineGeometry::smtPartition(contexts);
            core::HwProcessContext proc(profile);
            core::DracoHardwareEngine engine(true, geom);
            engine.switchTo(&proc);

            workload::TraceGenerator gen(*app, workloadSeed(*app));
            size_t calls = benchCalls() / 2;
            for (size_t i = 0; i < calls; ++i)
                engine.onSyscall(gen.next().req);

            const auto &slb = engine.slbStats();
            const auto &stb = engine.stbStats();
            const auto &hw = engine.stats();
            double stbHit = stb.lookups
                ? 100.0 * stb.hits / stb.lookups
                : 0.0;
            double slbHit = slb.accesses
                ? 100.0 * slb.accessHits / slb.accesses
                : 0.0;
            uint64_t fast = hw.flows[0] + hw.flows[1] + hw.flows[3] +
                hw.flows[5];

            std::string prefix = "runs." +
                MetricRegistry::sanitize(name) + ".contexts_" +
                std::to_string(contexts);
            engine.exportMetrics(shard, prefix);

            rows[idx] = {
                name,
                std::to_string(contexts),
                std::to_string(geom.slb[1].ways),
                std::to_string(geom.stbEntries),
                TextTable::num(stbHit, 1),
                TextTable::num(slbHit, 1),
                TextTable::num(100.0 * fast / hw.syscalls, 1),
            };
        },
        &report);

    for (const auto &row : rows)
        table.addRow(row);
    table.print();
    return 0;
}
