/**
 * @file
 * Serving observability overhead: end-to-end dracod latency with the
 * obs pipeline off versus on, plus the server-side stage breakdown.
 *
 * Mirrors the serve_throughput workload shape (16 tenants, 32-request
 * client batches, 4 shards, 64-drain) but drives a real SocketServer
 * over a Unix socket so the full request pipeline — admit, parse,
 * enqueue, drain, check, reply-flush — is on the measured path. Two
 * phases replay byte-identical per-tenant streams closed-loop:
 *
 *  - obs-off   no --metrics-listen: the stage-latency pipeline is
 *              compiled in but never stamps a clock or commits a
 *              histogram (the ServeObs hub does not exist).
 *  - obs-on    metrics endpoint bound on 127.0.0.1:0 with slow-request
 *              capture armed; every batch is stamped through all six
 *              stages and committed to the per-loop histograms, and a
 *              /metrics scrape runs mid-load to price the merge too.
 *
 * Each phase runs kRepeats times and reports the minimum wall time
 * (closed-loop wall is scheduling-noisy; min is the stable summary).
 * `figure.overhead_pct` is the obs-on wall cost over obs-off — the
 * ISSUE budget is <3%. The headline table is the server-side stage
 * quantile breakdown (p50/p95/p99/p999 per stage) scraped from the
 * obs hub after the last obs-on run: the numbers dracod would serve
 * from /metrics under this load.
 *
 * Per-tenant verdict counts are asserted identical across every run
 * of both phases — observability must not perturb verdicts (the
 * determinism contract; also test-enforced in tests/serve).
 */

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "common.hh"
#include "obs/serveobs.hh"
#include "serve/server.hh"
#include "serve/service.hh"

using namespace draco;
using namespace draco::bench;

namespace {

constexpr unsigned kTenants = 16;
constexpr uint32_t kClientBatch = 32;
constexpr unsigned kShards = 4;
constexpr int kRepeats = 3;

double
elapsedSeconds(std::chrono::steady_clock::time_point since)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - since)
        .count();
}

struct TenantTraffic {
    std::string name;
    std::vector<os::SyscallRequest> reqs;
};

/** Same construction as serve_throughput: byte-identical streams. */
std::vector<TenantTraffic>
makeTraffic()
{
    const auto &apps = benchWorkloads();
    const size_t perTenant = std::max<size_t>(1, benchCalls() / kTenants);
    std::vector<TenantTraffic> out(kTenants);
    for (unsigned t = 0; t < kTenants; ++t) {
        const workload::AppModel &app = *apps[t % apps.size()];
        out[t].name = "t" + std::to_string(t);
        workload::TraceGenerator gen(app, splitSeed(workloadSeed(app), t));
        workload::Trace trace = gen.generate(perTenant);
        out[t].reqs.reserve(trace.size());
        for (const workload::TraceEvent &ev : trace)
            out[t].reqs.push_back(ev.req);
    }
    return out;
}

/** One blocking HTTP/1.0 GET against 127.0.0.1:@p port. */
std::string
httpGet(uint16_t port, const std::string &target)
{
    int fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return "";
    sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof addr) != 0) {
        close(fd);
        return "";
    }
    std::string request = "GET " + target + " HTTP/1.0\r\n\r\n";
    size_t sent = 0;
    while (sent < request.size()) {
        ssize_t w = write(fd, request.data() + sent,
                          request.size() - sent);
        if (w <= 0)
            break;
        sent += static_cast<size_t>(w);
    }
    std::string reply;
    char buf[4096];
    ssize_t r;
    while ((r = read(fd, buf, sizeof buf)) > 0)
        reply.append(buf, static_cast<size_t>(r));
    close(fd);
    return reply;
}

struct PhaseResult {
    double wallSeconds = 0.0;
    uint64_t checks = 0;
    QuantileSketch clientUs; ///< Client round-trip batch latency.
    std::vector<std::pair<uint64_t, uint64_t>> verdicts;
    bool scraped = false; ///< /metrics answered mid-load (obs-on).
};

PhaseResult
runPhase(const std::vector<TenantTraffic> &traffic, bool obs,
         int repeat, MetricRegistry *stageOut)
{
    serve::ServiceOptions options;
    options.shards = kShards;
    options.queueCapacity = kTenants * kClientBatch * 4;
    options.maxBatch = 64;
    const os::KernelCosts costs = os::newKernelCosts();
    options.costs = &costs;
    serve::CheckService service(options);

    serve::ServerOptions serverOptions;
    serverOptions.socketPath = "/tmp/draco_serve_latency_" +
        std::to_string(getpid()) + "_" + (obs ? "on" : "off") + "_" +
        std::to_string(repeat) + ".sock";
    serverOptions.eventThreads = 2;
    if (obs) {
        serverOptions.metricsAddress = "127.0.0.1:0";
        // High enough that capture is rare under this load; the point
        // is the armed stamp/commit path, not a saturated slow ring.
        serverOptions.slowUs = 10000;
    }
    serve::SocketServer server(service, serverOptions);
    if (!server.start())
        fatal("serve_latency: could not start server on %s",
              serverOptions.socketPath.c_str());

    auto setup = serve::SocketClient::connect(serverOptions.socketPath);
    if (!setup)
        fatal("serve_latency: setup connect failed");
    std::vector<serve::TenantId> ids(kTenants);
    for (unsigned t = 0; t < kTenants; ++t) {
        ids[t] = setup->createTenant(traffic[t].name, "docker-default");
        if (ids[t] == serve::kInvalidTenant)
            fatal("serve_latency: createTenant(%s) failed",
                  traffic[t].name.c_str());
    }

    const unsigned drivers =
        std::min<unsigned>(std::max(1u, benchThreads()), kTenants);
    std::vector<QuantileSketch> latency(drivers);

    PhaseResult result;
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    threads.reserve(drivers);
    for (unsigned d = 0; d < drivers; ++d) {
        threads.emplace_back([&, d] {
            auto client =
                serve::SocketClient::connect(serverOptions.socketPath);
            if (!client)
                fatal("serve_latency: driver connect failed");
            std::vector<serve::CheckResponse> resps(kClientBatch);
            for (unsigned t = d; t < kTenants; t += drivers) {
                const auto &reqs = traffic[t].reqs;
                for (size_t pos = 0; pos < reqs.size();
                     pos += kClientBatch) {
                    const uint32_t n = static_cast<uint32_t>(
                        std::min<size_t>(kClientBatch,
                                         reqs.size() - pos));
                    const auto s0 = std::chrono::steady_clock::now();
                    if (!client->checkBatch(ids[t], reqs.data() + pos,
                                            n, resps.data()))
                        fatal("serve_latency: checkBatch failed");
                    latency[d].add(elapsedSeconds(s0) * 1e6);
                }
            }
        });
    }

    // Scrape mid-load so the merge-on-scrape cost is inside the
    // measured window, exactly as a Prometheus poller would land.
    if (obs && server.metricsPort() != 0) {
        std::string reply = httpGet(server.metricsPort(), "/metrics");
        result.scraped =
            reply.find("200") != std::string::npos &&
            reply.find("draco_serve_stage_latency_us") !=
                std::string::npos;
        if (!result.scraped)
            fatal("serve_latency: mid-load /metrics scrape failed");
    }

    for (std::thread &thread : threads)
        thread.join();
    result.wallSeconds = elapsedSeconds(t0);

    for (unsigned t = 0; t < kTenants; ++t) {
        serve::TenantStats stats;
        if (!setup->tenantStats(ids[t], stats))
            fatal("serve_latency: tenantStats(%s) failed",
                  traffic[t].name.c_str());
        result.verdicts.emplace_back(stats.allowed, stats.denied);
    }

    if (obs && stageOut)
        server.serveObs()->exportMetrics(*stageOut);

    server.stop();
    service.stop();
    result.checks = service.totalChecks();
    for (const QuantileSketch &sketch : latency)
        result.clientUs.merge(sketch);
    return result;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchReport report("serve_latency", argc, argv);
    const std::vector<TenantTraffic> traffic = makeTraffic();

    std::vector<std::pair<uint64_t, uint64_t>> fingerprint;
    double wallOff = 0.0, wallOn = 0.0;
    QuantileSketch clientOff, clientOn;
    uint64_t checks = 0;
    MetricRegistry stages;

    for (int repeat = 0; repeat < kRepeats; ++repeat) {
        for (int phase = 0; phase < 2; ++phase) {
            const bool obs = phase == 1;
            // The last obs-on run's hub feeds the stage breakdown.
            PhaseResult r = runPhase(
                traffic, obs, repeat,
                obs && repeat == kRepeats - 1 ? &stages : nullptr);

            // Verdicts must be identical with the pipeline on or off,
            // every repeat: observing a request never changes it.
            if (fingerprint.empty())
                fingerprint = r.verdicts;
            if (r.verdicts != fingerprint)
                fatal("serve_latency: verdicts diverged "
                      "(obs=%d repeat=%d)",
                      obs ? 1 : 0, repeat);

            checks = r.checks;
            double &wall = obs ? wallOn : wallOff;
            if (wall == 0.0 || r.wallSeconds < wall)
                wall = r.wallSeconds;
            (obs ? clientOn : clientOff).merge(r.clientUs);
        }
    }

    const double overheadPct =
        wallOff > 0.0 ? (wallOn - wallOff) / wallOff * 100.0 : 0.0;

    TextTable table("dracod observability overhead (" +
                    std::to_string(kTenants) + " tenants, " +
                    std::to_string(kShards) + " shards, min of " +
                    std::to_string(kRepeats) + " runs)");
    table.setHeader({"phase", "wall_s", "wall_qps", "client_p50_us",
                     "client_p99_us"});
    table.addRow({"obs-off", TextTable::num(wallOff, 3),
                  TextTable::num(wallOff > 0.0
                                     ? static_cast<double>(checks) / wallOff
                                     : 0.0,
                                 0),
                  TextTable::num(clientOff.quantile(0.50), 1),
                  TextTable::num(clientOff.quantile(0.99), 1)});
    table.addRow({"obs-on", TextTable::num(wallOn, 3),
                  TextTable::num(wallOn > 0.0
                                     ? static_cast<double>(checks) / wallOn
                                     : 0.0,
                                 0),
                  TextTable::num(clientOn.quantile(0.50), 1),
                  TextTable::num(clientOn.quantile(0.99), 1)});
    table.print();
    std::printf("overhead: %+.2f%% wall (budget <3%%)\n\n", overheadPct);

    // Headline: the server-side stage breakdown the obs hub measured —
    // what /metrics serves under this load.
    TextTable breakdown("server-side stage latency (obs-on, merged "
                        "across loops and shards)");
    breakdown.setHeader({"stage", "p50_us", "p95_us", "p99_us",
                         "p999_us", "count"});
    MetricRegistry &registry = report.registry();
    for (size_t st = 0; st < obs::kStageCount; ++st) {
        const obs::Stage stage = static_cast<obs::Stage>(st);
        const std::string name = obs::stageName(stage);
        QuantileSketch &sketch = stages.quantileSketch(
            "serve.obs.stages.all." + name + "_us");
        breakdown.addRow({name,
                          TextTable::num(sketch.quantile(0.50), 1),
                          TextTable::num(sketch.quantile(0.95), 1),
                          TextTable::num(sketch.quantile(0.99), 1),
                          TextTable::num(sketch.quantile(0.999), 1),
                          std::to_string(sketch.count())});
        const std::string prefix = "server.stages." + name;
        registry.setGauge(prefix + ".p50", sketch.quantile(0.50));
        registry.setGauge(prefix + ".p95", sketch.quantile(0.95));
        registry.setGauge(prefix + ".p99", sketch.quantile(0.99));
        registry.setGauge(prefix + ".p999", sketch.quantile(0.999));
        registry.setCounter(prefix + ".count", sketch.count());
    }
    breakdown.print();

    registry.setCounter("config.tenants", kTenants);
    registry.setCounter("config.shards", kShards);
    registry.setCounter("config.client_batch", kClientBatch);
    registry.setCounter("config.repeats", kRepeats);
    registry.setCounter("checks", checks);
    registry.setGauge("obs_off.wall_seconds", wallOff);
    registry.setGauge("obs_on.wall_seconds", wallOn);
    registry.setGauge("obs_off.client_us.p50", clientOff.quantile(0.50));
    registry.setGauge("obs_off.client_us.p99", clientOff.quantile(0.99));
    registry.setGauge("obs_on.client_us.p50", clientOn.quantile(0.50));
    registry.setGauge("obs_on.client_us.p99", clientOn.quantile(0.99));
    registry.setGauge("figure.overhead_pct", overheadPct);
    return 0;
}
