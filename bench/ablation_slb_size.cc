/**
 * @file
 * Ablation: SLB sizing sweep.
 *
 * Scales every subtable of the Table-II SLB geometry and reports hit
 * rates, normalized execution time (for the workloads with the largest
 * argument working sets), and the calibrated hardware cost of each
 * size point — the trade-off that justifies the paper's 8 KB design.
 */

#include "common.hh"

using namespace draco;
using namespace draco::bench;

namespace {

std::array<core::TableGeometry, core::Slb::kMaxArgc>
scaledGeometry(double scale)
{
    // The SLB indexes by SID, so all argument sets of one syscall
    // compete within a single set: associativity, not set count, is
    // the binding resource. The sweep therefore scales ways along with
    // total capacity (sets stay fixed).
    core::Slb reference;
    std::array<core::TableGeometry, core::Slb::kMaxArgc> out;
    for (unsigned argc = 1; argc <= core::Slb::kMaxArgc; ++argc) {
        const auto &geom = reference.geometry(argc);
        unsigned ways = std::max<unsigned>(
            1, static_cast<unsigned>(geom.ways * scale + 0.5));
        unsigned sets = geom.sets();
        out[argc - 1] = core::TableGeometry{sets * ways, ways};
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchReport report("ablation_slb_size", argc, argv);
    ProfileCache cache;
    const double scales[] = {0.25, 0.5, 1.0, 2.0, 4.0};
    const char *apps[] = {"elasticsearch", "redis", "httpd", "mysql",
                          "pipe-ipc"};

    TextTable table("SLB sizing sweep (hardware Draco, "
                    "syscall-complete)");
    table.setHeader({"scale", "workload", "slb-access", "slb-preload",
                     "normalized", "slb-area-mm2", "slb-leak-mW"});

    const size_t nScales = std::size(scales);
    const size_t nApps = std::size(apps);
    std::vector<sim::RunResult> results(nScales * nApps);
    parallelCells(
        results.size(),
        [&](size_t idx, MetricRegistry &shard) {
            double scale = scales[idx / nApps];
            const char *name = apps[idx % nApps];
            const auto *app = workload::workloadByName(name);
            sim::RunOptions options;
            options.mechanism = sim::Mechanism::DracoHW;
            options.steadyCalls = benchCalls();
            options.seed = workloadSeed(*app);
            options.slbGeometry = scaledGeometry(scale);
            sim::ExperimentRunner runner;
            sim::RunResult r =
                runner.run(*app, cache.get(*app).complete, options);
            recordCell(shard,
                       "scale_" +
                           MetricRegistry::sanitize(
                               TextTable::num(scale, 2)) +
                           "." + MetricRegistry::sanitize(name),
                       r);
            results[idx] = std::move(r);
        },
        &report);

    for (size_t idx = 0; idx < results.size(); ++idx) {
        double scale = scales[idx / nApps];
        hwmodel::SramCosts cost = hwmodel::scaledSlbCost(scale);
        const sim::RunResult &r = results[idx];
        table.addRow({
            TextTable::num(scale, 2),
            apps[idx % nApps],
            TextTable::num(r.slbAccessHitRate() * 100.0, 1),
            TextTable::num(r.slbPreloadHitRate() * 100.0, 1),
            TextTable::num(r.normalized(), 4),
            TextTable::num(cost.areaMm2, 5),
            TextTable::num(cost.leakageMw, 3),
        });
    }
    table.print();
    return 0;
}
