/**
 * @file
 * Table I occupancy: how often each hardware-Draco execution flow is
 * taken per workload under syscall-complete profiles.
 *
 * Paper context: flows 1/3/5 (and ID-only checks) are fast; 2/4/6 are
 * slow because they read the VAT at the ROB head. The ≤1% overhead of
 * Fig. 12 requires the fast flows to dominate after warm-up.
 */

#include "common.hh"

using namespace draco;
using namespace draco::bench;

int
main(int argc, char **argv)
{
    BenchReport report("table1_flows", argc, argv);
    ProfileCache cache;

    TextTable table("Table I flow mix (percent of syscalls; hardware "
                    "Draco, syscall-complete)");
    table.setHeader({"workload", "id-only", "f1", "f2", "f3", "f4", "f5",
                     "f6", "denied", "fast-total"});

    for (const auto *app : benchWorkloads()) {
        sim::RunResult r = runExperiment(
            *app, ProfileKind::Complete, sim::Mechanism::DracoHW, cache);
        report.record(MetricRegistry::sanitize(app->name), r);
        double total = static_cast<double>(r.hw.syscalls);
        auto pct = [&](size_t flow) {
            return TextTable::num(r.hw.flows[flow] / total * 100.0, 2);
        };
        double fast = (r.hw.flows[0] + r.hw.flows[1] + r.hw.flows[3] +
                       r.hw.flows[5]) /
            total * 100.0;
        table.addRow({app->name, pct(0), pct(1), pct(2), pct(3), pct(4),
                      pct(5), pct(6), pct(7),
                      TextTable::num(fast, 2)});
    }
    table.print();
    return 0;
}
