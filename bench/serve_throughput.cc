/**
 * @file
 * dracod serving throughput: modeled QPS and measured latency versus
 * shard count, with and without batching.
 *
 * 16 tenants (so every swept shard count divides the tenant set evenly)
 * replay per-tenant synthetic traces through an in-process CheckService,
 * closed-loop. For each (shards × batching) cell the table reports:
 *
 *  - qps       modeled throughput: checks / maxShardBusyNs, the
 *              §V-C-priced makespan of the busiest shard. Deterministic
 *              on any host and independent of driver scheduling — this
 *              is the headline scaling figure (4 shards ≥ 3× 1 shard).
 *  - wall_qps  measured wall-clock throughput (host-dependent).
 *  - p50/p99   measured submit-to-verdict batch latency (µs).
 *
 * Batching on: clients submit 32-request batches and workers drain up
 * to 64 requests per wakeup. Batching off: single-request submits,
 * one-request drains. Every cell replays byte-identical request
 * streams; after each cell the per-tenant verdict counts are asserted
 * equal to the 1-shard baseline's — zero lost or duplicated verdicts.
 *
 * JSON artifact: `sweep.s<shards>.<batch|nobatch>.*` per cell plus
 * `figure.speedup_modeled.s{2,4,8}` (batch-on modeled QPS over the
 * 1-shard baseline). Wall/latency gauges are measured, not modeled, so
 * unlike the figure benches this artifact is not byte-stable across
 * runs; the modeled `qps` gauges and the verdict assertions are.
 */

#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "common.hh"
#include "serve/client.hh"
#include "serve/service.hh"

using namespace draco;
using namespace draco::bench;

namespace {

constexpr unsigned kTenants = 16;
constexpr uint32_t kClientBatch = 32;

double
elapsedSeconds(std::chrono::steady_clock::time_point since)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - since)
        .count();
}

/** One tenant's replayed request stream. */
struct TenantTraffic {
    std::string name;
    std::vector<os::SyscallRequest> reqs;
};

/**
 * Per-tenant synthetic traffic: tenant t replays workload t mod |apps|
 * under a per-tenant seed split, prologue included (tenant creation in
 * a container starts with the loader syscalls too). Generated once and
 * shared by every sweep cell so all cells check identical streams.
 */
std::vector<TenantTraffic>
makeTraffic()
{
    const auto &apps = benchWorkloads();
    const size_t perTenant = std::max<size_t>(1, benchCalls() / kTenants);
    std::vector<TenantTraffic> out(kTenants);
    for (unsigned t = 0; t < kTenants; ++t) {
        const workload::AppModel &app = *apps[t % apps.size()];
        out[t].name = "t" + std::to_string(t);
        workload::TraceGenerator gen(app, splitSeed(workloadSeed(app), t));
        workload::Trace trace = gen.generate(perTenant);
        out[t].reqs.reserve(trace.size());
        for (const workload::TraceEvent &ev : trace)
            out[t].reqs.push_back(ev.req);
    }
    return out;
}

struct CellResult {
    double qps = 0.0;         ///< Modeled (deterministic).
    double wallQps = 0.0;     ///< Measured.
    double wallSeconds = 0.0;
    QuantileSketch latencyUs; ///< Measured batch latency.
    uint64_t checks = 0;
    uint64_t drains = 0;
    double avgBatch = 0.0;
    /** Per-tenant (allowed, denied) — the determinism fingerprint. */
    std::vector<std::pair<uint64_t, uint64_t>> verdicts;
};

CellResult
runCell(const std::vector<TenantTraffic> &traffic, unsigned shards,
        bool batching)
{
    serve::ServiceOptions options;
    options.shards = shards;
    // Closed-loop drivers never outrun the workers far enough to shed,
    // but size the queue so that is structurally impossible: every
    // verdict must be a real check for the determinism assertion.
    options.queueCapacity = kTenants * kClientBatch * 4;
    options.maxBatch = batching ? 64 : 1;
    const os::KernelCosts costs = os::newKernelCosts();
    options.costs = &costs;

    serve::CheckService service(options);
    static const seccomp::Profile profile =
        seccomp::dockerDefaultProfile();
    std::vector<serve::TenantId> ids(kTenants);
    for (unsigned t = 0; t < kTenants; ++t) {
        ids[t] = service.createTenant(traffic[t].name, profile);
        if (ids[t] == serve::kInvalidTenant)
            fatal("serve_throughput: createTenant(%s) failed",
                  traffic[t].name.c_str());
    }

    const uint32_t clientBatch = batching ? kClientBatch : 1;
    const unsigned drivers =
        std::min<unsigned>(std::max(1u, benchThreads()), kTenants);

    std::vector<QuantileSketch> latency(drivers);
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    threads.reserve(drivers);
    for (unsigned d = 0; d < drivers; ++d) {
        threads.emplace_back([&, d] {
            std::vector<serve::CheckResponse> resps(clientBatch);
            for (unsigned t = d; t < kTenants; t += drivers) {
                const auto &reqs = traffic[t].reqs;
                for (size_t pos = 0; pos < reqs.size();
                     pos += clientBatch) {
                    const uint32_t n = static_cast<uint32_t>(
                        std::min<size_t>(clientBatch,
                                         reqs.size() - pos));
                    const auto s0 = std::chrono::steady_clock::now();
                    serve::Batch batch;
                    service.submitBatch(ids[t], reqs.data() + pos, n,
                                        resps.data(), batch);
                    batch.wait();
                    latency[d].add(elapsedSeconds(s0) * 1e6);
                    for (uint32_t i = 0; i < n; ++i)
                        if (resps[i].status != serve::CheckStatus::Allowed &&
                            resps[i].status != serve::CheckStatus::Denied)
                            fatal("serve_throughput: tenant %s request "
                                  "shed (%s) in a closed loop",
                                  traffic[t].name.c_str(),
                                  serve::checkStatusName(
                                      resps[i].status));
                }
            }
        });
    }
    for (std::thread &thread : threads)
        thread.join();

    CellResult cell;
    cell.wallSeconds = elapsedSeconds(t0);

    for (unsigned t = 0; t < kTenants; ++t) {
        serve::TenantStats stats;
        if (!service.tenantStats(ids[t], stats))
            fatal("serve_throughput: tenantStats(%s) failed",
                  traffic[t].name.c_str());
        cell.verdicts.emplace_back(stats.allowed, stats.denied);
    }
    service.stop();

    cell.checks = service.totalChecks();
    const double busyNs = service.maxShardBusyNs();
    cell.qps = busyNs > 0.0
                   ? static_cast<double>(cell.checks) / busyNs * 1e9
                   : 0.0;
    cell.wallQps = cell.wallSeconds > 0.0
                       ? static_cast<double>(cell.checks) /
                             cell.wallSeconds
                       : 0.0;
    for (const QuantileSketch &sketch : latency)
        cell.latencyUs.merge(sketch);

    MetricRegistry scratch;
    service.exportMetrics(scratch);
    cell.drains = scratch.counterValue("serve.drains");
    cell.avgBatch = scratch.runningStat("serve.batch_size").mean();

    uint64_t expected = 0;
    for (const TenantTraffic &tenant : traffic)
        expected += tenant.reqs.size();
    if (cell.checks != expected || service.totalRejects() != 0)
        fatal("serve_throughput: lost verdicts (%llu checked, %llu "
              "expected, %llu shed)",
              static_cast<unsigned long long>(cell.checks),
              static_cast<unsigned long long>(expected),
              static_cast<unsigned long long>(service.totalRejects()));
    return cell;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchReport report("serve_throughput", argc, argv);
    const std::vector<TenantTraffic> traffic = makeTraffic();

    const std::vector<unsigned> shardCounts = {1, 2, 4, 8};
    TextTable table("dracod serving throughput (" +
                    std::to_string(kTenants) + " tenants, modeled QPS)");
    table.setHeader({"shards", "qps", "qps-nobatch", "wall_qps",
                     "p50_us", "p99_us", "avg_batch", "speedup"});

    std::vector<std::pair<uint64_t, uint64_t>> baseline;
    double baseQps = 0.0;
    for (unsigned shards : shardCounts) {
        CellResult batched = runCell(traffic, shards, true);
        CellResult unbatched = runCell(traffic, shards, false);

        // Identical per-tenant verdict counts at every shard count and
        // batch granularity: the subsystem's determinism contract.
        if (baseline.empty())
            baseline = batched.verdicts;
        if (batched.verdicts != baseline ||
            unbatched.verdicts != baseline)
            fatal("serve_throughput: verdict counts diverged at "
                  "shards=%u",
                  shards);

        if (shards == 1)
            baseQps = batched.qps;
        const double speedup =
            baseQps > 0.0 ? batched.qps / baseQps : 0.0;

        table.addRow({std::to_string(shards),
                      TextTable::num(batched.qps, 0),
                      TextTable::num(unbatched.qps, 0),
                      TextTable::num(batched.wallQps, 0),
                      TextTable::num(batched.latencyUs.quantile(0.50), 1),
                      TextTable::num(batched.latencyUs.quantile(0.99), 1),
                      TextTable::num(batched.avgBatch, 1),
                      TextTable::num(speedup, 2)});

        for (int pass = 0; pass < 2; ++pass) {
            const CellResult &cell = pass == 0 ? batched : unbatched;
            std::string prefix = "sweep.s" + std::to_string(shards) +
                                 (pass == 0 ? ".batch" : ".nobatch");
            MetricRegistry &registry = report.registry();
            registry.setGauge(MetricRegistry::join(prefix, "qps"),
                              cell.qps);
            registry.setGauge(MetricRegistry::join(prefix, "wall_qps"),
                              cell.wallQps);
            // Per-check cost, the unit the hotpath bench argues in:
            // ns_per_check is modeled (busiest-shard makespan over
            // checks, deterministic); wall_ns_per_check is measured.
            registry.setGauge(
                MetricRegistry::join(prefix, "ns_per_check"),
                cell.qps > 0.0 ? 1e9 / cell.qps : 0.0);
            registry.setGauge(
                MetricRegistry::join(prefix, "wall_ns_per_check"),
                cell.checks > 0
                    ? cell.wallSeconds * 1e9 /
                          static_cast<double>(cell.checks)
                    : 0.0);
            registry.setGauge(
                MetricRegistry::join(prefix, "wall_seconds"),
                cell.wallSeconds);
            registry.setCounter(MetricRegistry::join(prefix, "checks"),
                                cell.checks);
            registry.setCounter(MetricRegistry::join(prefix, "drains"),
                                cell.drains);
            registry.setGauge(
                MetricRegistry::join(prefix, "avg_batch"),
                cell.avgBatch);
            registry.setGauge(
                MetricRegistry::join(prefix, "latency_us.p50"),
                cell.latencyUs.quantile(0.50));
            registry.setGauge(
                MetricRegistry::join(prefix, "latency_us.p90"),
                cell.latencyUs.quantile(0.90));
            registry.setGauge(
                MetricRegistry::join(prefix, "latency_us.p99"),
                cell.latencyUs.quantile(0.99));
        }
        if (shards > 1)
            report.registry().setGauge(
                "figure.speedup_modeled.s" + std::to_string(shards),
                speedup);
    }
    report.registry().setCounter("sweep.tenants", kTenants);
    report.registry().setCounter("sweep.client_batch", kClientBatch);

    table.print();
    return 0;
}
