/**
 * @file
 * Ablation: STB-driven SLB preloading on vs off (§XI-B recommends
 * preloading: it converts would-be slow flows into fast flow 3 by
 * fetching VAT entries before the syscall reaches the ROB head).
 */

#include "common.hh"

using namespace draco;
using namespace draco::bench;

int
main(int argc, char **argv)
{
    BenchReport report("ablation_preload", argc, argv);
    ProfileCache cache;

    TextTable table("SLB preloading ablation (hardware Draco, "
                    "syscall-complete; normalized to insecure)");
    table.setHeader({"workload", "with-preload", "without-preload",
                     "check-ns/call(with)", "check-ns/call(without)"});

    const auto &apps = benchWorkloads();
    std::vector<std::pair<sim::RunResult, sim::RunResult>> results(
        apps.size());
    parallelCells(
        apps.size(),
        [&](size_t i, MetricRegistry &shard) {
            const auto *app = apps[i];
            sim::RunOptions options;
            options.mechanism = sim::Mechanism::DracoHW;
            options.steadyCalls = benchCalls();
            options.seed = workloadSeed(*app);
            sim::ExperimentRunner runner;
            const auto &profile = cache.get(*app).complete;

            sim::RunResult with = runner.run(*app, profile, options);
            options.hwPreload = false;
            sim::RunResult without = runner.run(*app, profile, options);

            std::string appSeg = MetricRegistry::sanitize(app->name);
            recordCell(shard, "preload_on." + appSeg, with);
            recordCell(shard, "preload_off." + appSeg, without);
            results[i] = {std::move(with), std::move(without)};
        },
        &report);

    for (size_t i = 0; i < apps.size(); ++i) {
        const auto &[with, without] = results[i];
        table.addRow({
            apps[i]->name,
            TextTable::num(with.normalized(), 4),
            TextTable::num(without.normalized(), 4),
            TextTable::num(with.checkNs / with.syscalls, 2),
            TextTable::num(without.checkNs / without.syscalls, 2),
        });
    }
    table.print();
    return 0;
}
