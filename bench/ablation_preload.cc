/**
 * @file
 * Ablation: STB-driven SLB preloading on vs off (§XI-B recommends
 * preloading: it converts would-be slow flows into fast flow 3 by
 * fetching VAT entries before the syscall reaches the ROB head).
 */

#include "common.hh"

using namespace draco;
using namespace draco::bench;

int
main(int argc, char **argv)
{
    BenchReport report("ablation_preload", argc, argv);
    ProfileCache cache;

    TextTable table("SLB preloading ablation (hardware Draco, "
                    "syscall-complete; normalized to insecure)");
    table.setHeader({"workload", "with-preload", "without-preload",
                     "check-ns/call(with)", "check-ns/call(without)"});

    for (const auto *app : benchWorkloads()) {
        sim::RunOptions options;
        options.mechanism = sim::Mechanism::DracoHW;
        options.steadyCalls = benchCalls();
        options.seed = kBenchSeed;
        sim::ExperimentRunner runner;
        const auto &profile = cache.get(*app).complete;

        sim::RunResult with = runner.run(*app, profile, options);
        options.hwPreload = false;
        sim::RunResult without = runner.run(*app, profile, options);

        std::string appSeg = MetricRegistry::sanitize(app->name);
        report.record("preload_on." + appSeg, with);
        report.record("preload_off." + appSeg, without);

        table.addRow({
            app->name,
            TextTable::num(with.normalized(), 4),
            TextTable::num(without.normalized(), 4),
            TextTable::num(with.checkNs / with.syscalls, 2),
            TextTable::num(without.checkNs / without.syscalls, 2),
        });
    }
    table.print();
    return 0;
}
