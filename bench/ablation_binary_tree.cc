/**
 * @file
 * §XII ablation: the libseccomp cBPF binary-tree optimization.
 *
 * Hromatka's tree replaces the linear syscall-ID scan; the paper notes
 * it "does not fundamentally address the overhead" — in his own
 * measurement a tree-dispatched filter still left syscalls ~2.4× slower
 * than with Seccomp disabled, and argument checks are untouched by the
 * optimization. This bench compares the pure if-chain, the
 * range-coalescing linear form, and the binary tree, with per-syscall
 * dynamic instruction counts and end-to-end overhead.
 */

#include "common.hh"

using namespace draco;
using namespace draco::bench;

namespace {

double
meanFilterInsns(const seccomp::FilterChain &chain,
                const workload::AppModel &app)
{
    workload::TraceGenerator gen(app, workloadSeed(app));
    RunningStat insns;
    for (size_t i = 0; i < 20000; ++i) {
        auto r = chain.run(gen.next().req.toSeccompData());
        insns.add(static_cast<double>(r.insnsExecuted));
    }
    return insns.mean();
}

} // namespace

int
main(int argc, char **argv)
{
    BenchReport report("ablation_binary_tree", argc, argv);
    ProfileCache cache;
    seccomp::Profile docker = seccomp::dockerDefaultProfile();

    struct Shape {
        const char *name;
        seccomp::DispatchShape shape;
    };
    const Shape shapes[] = {
        {"linear-chain", seccomp::DispatchShape::LinearChain},
        {"linear-coalesced", seccomp::DispatchShape::Linear},
        {"binary-tree", seccomp::DispatchShape::BinaryTree},
    };

    TextTable insnTable(
        "Mean dynamic BPF instructions per syscall, docker-default");
    insnTable.setHeader({"workload", "linear-chain", "linear-coalesced",
                         "binary-tree"});
    const char *insnApps[] = {"unixbench-syscall", "nginx", "redis",
                              "mysql"};
    const size_t nShapes = std::size(shapes);
    std::vector<double> meanInsns(std::size(insnApps) * nShapes);
    parallelCells(
        meanInsns.size(),
        [&](size_t idx, MetricRegistry &shard) {
            const char *name = insnApps[idx / nShapes];
            const Shape &shape = shapes[idx % nShapes];
            const auto *app = workload::workloadByName(name);
            auto chain = seccomp::buildFilterChain(docker, shape.shape);
            double insns = meanFilterInsns(chain, *app);
            shard.setGauge(
                "insns." + MetricRegistry::sanitize(shape.name) + "." +
                    MetricRegistry::sanitize(name),
                insns);
            meanInsns[idx] = insns;
        },
        &report);

    for (size_t a = 0; a < std::size(insnApps); ++a) {
        std::vector<std::string> row = {insnApps[a]};
        for (size_t s = 0; s < nShapes; ++s)
            row.push_back(TextTable::num(meanInsns[a * nShapes + s], 1));
        insnTable.addRow(row);
    }
    insnTable.print();

    TextTable ovTable("End-to-end overhead vs insecure (unixbench-"
                      "syscall, docker-default, both kernel stacks)");
    ovTable.setHeader({"shape", "new-kernel", "old-kernel-interp"});
    const auto *app = workload::workloadByName("unixbench-syscall");
    std::vector<std::pair<sim::RunResult, sim::RunResult>> overheads(
        nShapes);
    parallelCells(
        nShapes,
        [&](size_t s, MetricRegistry &shard) {
            const Shape &shape = shapes[s];
            sim::RunOptions options;
            options.mechanism = sim::Mechanism::Seccomp;
            options.shape = shape.shape;
            options.steadyCalls = benchCalls();
            options.seed = workloadSeed(*app);
            sim::ExperimentRunner runner;
            sim::RunResult newRun = runner.run(*app, docker, options);
            options.costs = &os::oldKernelCosts();
            sim::RunResult oldRun = runner.run(*app, docker, options);
            std::string shapeSeg = MetricRegistry::sanitize(shape.name);
            recordCell(shard, shapeSeg + ".new_kernel", newRun);
            recordCell(shard, shapeSeg + ".old_kernel", oldRun);
            overheads[s] = {std::move(newRun), std::move(oldRun)};
        },
        &report);

    for (size_t s = 0; s < nShapes; ++s) {
        ovTable.addRow({shapes[s].name,
                        TextTable::num(overheads[s].first.normalized(),
                                       3),
                        TextTable::num(overheads[s].second.normalized(),
                                       3)});
    }
    ovTable.print();

    std::printf("paper context: even tree-dispatched interpreted "
                "filters left syscalls ~2.4x slower than seccomp-off "
                "in Hromatka's measurements; only caching validated "
                "checks (Draco) removes the per-call work.\n");
    return 0;
}
