/**
 * @file
 * Live policy hot-swap cost: steady-state check throughput with swaps
 * in flight versus attach-once, plus the latency of the swap itself.
 *
 * Eight tenants replay per-tenant workload streams closed-loop
 * (blocking 32-request batches, one driver thread per tenant) against
 * an in-process 2-shard CheckService. The sweep varies the swap
 * cadence: attach-once (the baseline — no swap ever lands, pricing the
 * subsystem's zero-cost claim for the hot path) and a hot-swap every
 * 1024 / 256 / 64 completed batches per tenant, rotating
 * docker-default <-> gvisor. Each cadence runs kRepeats times and
 * reports the minimum wall time; every swapProfile() call is timed
 * individually (enqueue, drain to the FIFO boundary, publish, checker
 * rebuild) into the swap-latency quantiles.
 *
 * Every cadence also runs once on a 1-shard service; the per-tenant
 * (checks, allowed, denied, vatHits, epoch, swaps) fingerprint must be
 * byte-identical across shard counts — the swap-boundary determinism
 * contract, also test- and CI-enforced — or the bench aborts.
 */

#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "common.hh"
#include "serve/client.hh"
#include "serve/service.hh"

using namespace draco;
using namespace draco::bench;

namespace {

constexpr unsigned kTenants = 8;
constexpr uint32_t kClientBatch = 32;
constexpr unsigned kShards = 2;
constexpr int kRepeats = 3;
constexpr uint64_t kCadences[] = {0, 1024, 256, 64};

double
elapsedSeconds(std::chrono::steady_clock::time_point since)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - since)
        .count();
}

struct TenantTraffic {
    std::string name;
    std::vector<os::SyscallRequest> reqs;
};

/** Same construction as serve_latency: byte-identical streams. */
std::vector<TenantTraffic>
makeTraffic()
{
    const auto &apps = benchWorkloads();
    const size_t perTenant = std::max<size_t>(1, benchCalls() / kTenants);
    std::vector<TenantTraffic> out(kTenants);
    for (unsigned t = 0; t < kTenants; ++t) {
        const workload::AppModel &app = *apps[t % apps.size()];
        out[t].name = "t" + std::to_string(t);
        workload::TraceGenerator gen(app, splitSeed(workloadSeed(app), t));
        workload::Trace trace = gen.generate(perTenant);
        out[t].reqs.reserve(trace.size());
        for (const workload::TraceEvent &ev : trace)
            out[t].reqs.push_back(ev.req);
    }
    return out;
}

/** Per-tenant verdict/epoch fingerprint (must be shard-invariant). */
using Fingerprint = std::vector<std::vector<uint64_t>>;

struct PhaseResult {
    double wallSeconds = 0.0;
    uint64_t checks = 0;
    uint64_t swaps = 0;
    QuantileSketch swapUs;
    Fingerprint fingerprint;
};

PhaseResult
runPhase(const std::vector<TenantTraffic> &traffic, uint64_t cadence,
         unsigned shards)
{
    serve::ServiceOptions options;
    options.shards = shards;
    options.queueCapacity = kTenants * kClientBatch * 4;
    options.maxBatch = 64;
    serve::CheckService service(options);

    const seccomp::Profile base =
        *serve::builtinProfileByName("docker-default");
    const seccomp::Profile alt = *serve::builtinProfileByName("gvisor");

    std::vector<serve::TenantId> ids(kTenants);
    for (unsigned t = 0; t < kTenants; ++t) {
        ids[t] = service.createTenant(traffic[t].name, base);
        if (ids[t] == serve::kInvalidTenant)
            fatal("policy_swap: createTenant(%s) failed",
                  traffic[t].name.c_str());
    }

    std::vector<QuantileSketch> swapSketch(kTenants);
    std::vector<uint64_t> swapCount(kTenants, 0);

    PhaseResult result;
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    threads.reserve(kTenants);
    for (unsigned t = 0; t < kTenants; ++t) {
        threads.emplace_back([&, t] {
            const auto &reqs = traffic[t].reqs;
            std::vector<serve::CheckResponse> resps(kClientBatch);
            serve::Batch done;
            uint64_t batches = 0;
            for (size_t pos = 0; pos < reqs.size();
                 pos += kClientBatch) {
                const uint32_t n = static_cast<uint32_t>(
                    std::min<size_t>(kClientBatch, reqs.size() - pos));
                service.submitBatch(ids[t], reqs.data() + pos, n,
                                    resps.data(), done);
                done.wait();
                ++batches;
                if (cadence > 0 && batches % cadence == 0 &&
                    pos + n < reqs.size()) {
                    const seccomp::Profile &next =
                        (swapCount[t] % 2) ? base : alt;
                    const auto s0 = std::chrono::steady_clock::now();
                    if (!service.swapProfile(ids[t], next))
                        fatal("policy_swap: swapProfile failed");
                    swapSketch[t].add(elapsedSeconds(s0) * 1e6);
                    ++swapCount[t];
                }
            }
        });
    }
    for (std::thread &thread : threads)
        thread.join();
    result.wallSeconds = elapsedSeconds(t0);

    for (unsigned t = 0; t < kTenants; ++t) {
        serve::TenantStats stats;
        if (!service.tenantStats(ids[t], stats))
            fatal("policy_swap: tenantStats(%s) failed",
                  traffic[t].name.c_str());
        result.fingerprint.push_back(
            {stats.check.checks, stats.check.vatHits,
             stats.check.filterRuns, stats.allowed, stats.denied,
             stats.epoch, stats.swaps});
        result.swaps += stats.swaps;
        result.swapUs.merge(swapSketch[t]);
    }
    service.stop();
    result.checks = service.totalChecks();
    return result;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchReport report("policy_swap", argc, argv);
    const std::vector<TenantTraffic> traffic = makeTraffic();

    TextTable table("policy hot-swap cost (" + std::to_string(kTenants) +
                    " tenants, " + std::to_string(kShards) +
                    " shards, min of " + std::to_string(kRepeats) +
                    " runs; cadence in batches/tenant)");
    table.setHeader({"cadence", "swaps", "wall_s", "ns_per_check",
                     "overhead_pct", "swap_p50_us", "swap_p99_us"});

    MetricRegistry &registry = report.registry();
    double baselineNs = 0.0;
    for (uint64_t cadence : kCadences) {
        PhaseResult best;
        QuantileSketch swapUs;
        Fingerprint expected;
        for (int repeat = 0; repeat < kRepeats; ++repeat) {
            PhaseResult r = runPhase(traffic, cadence, kShards);
            // Repeats replay identical streams: any fingerprint drift
            // is nondeterminism, not noise.
            if (expected.empty())
                expected = r.fingerprint;
            else if (r.fingerprint != expected)
                fatal("policy_swap: cadence %llu fingerprint drifted "
                      "across repeats",
                      static_cast<unsigned long long>(cadence));
            swapUs.merge(r.swapUs);
            if (best.wallSeconds == 0.0 ||
                r.wallSeconds < best.wallSeconds)
                best = std::move(r);
        }
        // Shard-count invariance: the 1-shard fingerprint must match
        // the 2-shard one — the swap-boundary determinism contract.
        if (runPhase(traffic, cadence, 1).fingerprint != expected)
            fatal("policy_swap: cadence %llu verdict fingerprint "
                  "differs between 1 and %u shards",
                  static_cast<unsigned long long>(cadence), kShards);

        const double nsPerCheck =
            best.checks > 0
                ? best.wallSeconds * 1e9 / static_cast<double>(best.checks)
                : 0.0;
        if (cadence == 0)
            baselineNs = nsPerCheck;
        const double overheadPct =
            baselineNs > 0.0 && cadence != 0
                ? (nsPerCheck - baselineNs) / baselineNs * 100.0
                : 0.0;

        const std::string label =
            cadence == 0 ? "attach-once" : std::to_string(cadence);
        table.addRow({label, std::to_string(best.swaps),
                      TextTable::num(best.wallSeconds, 3),
                      TextTable::num(nsPerCheck, 1),
                      cadence == 0 ? "-" : TextTable::num(overheadPct, 2),
                      swapUs.count() ? TextTable::num(swapUs.quantile(0.50), 1)
                                     : "-",
                      swapUs.count() ? TextTable::num(swapUs.quantile(0.99), 1)
                                     : "-"});

        const std::string prefix =
            "swap." +
            (cadence == 0 ? std::string("attach_once")
                          : "every_" + std::to_string(cadence));
        registry.setGauge(prefix + ".wall_seconds", best.wallSeconds);
        registry.setGauge(prefix + ".ns_per_check", nsPerCheck);
        registry.setCounter(prefix + ".swaps", best.swaps);
        registry.setCounter(prefix + ".checks", best.checks);
        if (cadence != 0) {
            registry.setGauge(prefix + ".overhead_pct", overheadPct);
            registry.setGauge(prefix + ".swap_latency_us.p50",
                              swapUs.quantile(0.50));
            registry.setGauge(prefix + ".swap_latency_us.p90",
                              swapUs.quantile(0.90));
            registry.setGauge(prefix + ".swap_latency_us.p99",
                              swapUs.quantile(0.99));
        }
    }
    table.print();
    std::printf("fingerprints identical on 1 and %u shards for every "
                "cadence\n",
                kShards);

    registry.setCounter("config.tenants", kTenants);
    registry.setCounter("config.shards", kShards);
    registry.setCounter("config.client_batch", kClientBatch);
    registry.setCounter("config.repeats", kRepeats);
    registry.setGauge("figure.attach_once_ns_per_check", baselineNs);
    return 0;
}
