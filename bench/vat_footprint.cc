/**
 * @file
 * §XI-C: VAT memory consumption per process.
 *
 * Paper shape: the geometric mean of the VAT size across applications
 * is 6.98 KB — several KB per process, small enough that address
 * translations and cache lines exhibit good locality.
 */

#include "common.hh"

using namespace draco;
using namespace draco::bench;

int
main(int argc, char **argv)
{
    BenchReport report("vat_footprint", argc, argv);
    ProfileCache cache;

    TextTable table("VAT memory consumption (syscall-complete "
                    "profiles, after a full measured run)");
    table.setHeader({"workload", "tables", "bytes", "KB"});

    RunningStat footprint;
    for (const auto *app : benchWorkloads()) {
        sim::RunResult r = runExperiment(
            *app, ProfileKind::Complete, sim::Mechanism::DracoSW, cache);
        const auto &profile = cache.get(*app).complete;
        size_t tables = 0;
        for (const auto &[sid, spec] : core::deriveCheckSpecs(profile))
            tables += spec.checksArguments();
        footprint.add(static_cast<double>(r.vatFootprintBytes));
        report.record(MetricRegistry::sanitize(app->name), r);
        table.addRow({app->name, std::to_string(tables),
                      std::to_string(r.vatFootprintBytes),
                      TextTable::num(r.vatFootprintBytes / 1024.0, 2)});
    }
    table.print();

    std::printf("geometric mean VAT footprint: %.2f KB "
                "(paper: 6.98 KB)\n",
                footprint.geomean() / 1024.0);

    report.registry().setGauge("figure.geomean_footprint_kb",
                               footprint.geomean() / 1024.0);
    return 0;
}
