/**
 * @file
 * Figure 14: distribution of the number of arguments of the system
 * calls Draco checks — the violin plot that justifies the per-argument-
 * count SLB subtable sizing.
 *
 * The `linux` row covers the complete native syscall interface (the
 * paper sizes the SLB from this distribution); each workload row covers
 * the checked syscalls of its syscall-complete profile. Pointer
 * arguments are excluded, as neither Seccomp nor Draco checks them.
 */

#include "common.hh"

using namespace draco;
using namespace draco::bench;

namespace {

void
addDistributionRow(TextTable &table, BenchReport &report,
                   const std::string &name,
                   const std::vector<unsigned> &argCounts)
{
    std::array<unsigned, 7> hist{};
    QuantileSketch sketch;
    for (unsigned c : argCounts) {
        hist[std::min<unsigned>(c, 6)]++;
        sketch.add(c);
    }
    std::vector<std::string> row = {name};
    std::string prefix = MetricRegistry::join(
        "figure", MetricRegistry::sanitize(name));
    for (unsigned c = 0; c <= 6; ++c) {
        row.push_back(std::to_string(hist[c]));
        report.registry().setCounter(
            MetricRegistry::join(prefix,
                                 "args_" + std::to_string(c)),
            hist[c]);
    }
    row.push_back(TextTable::num(sketch.quantile(0.5), 1));
    report.registry().setGauge(
        MetricRegistry::join(prefix, "median_args"),
        sketch.quantile(0.5));
    table.addRow(row);
}

} // namespace

int
main(int argc, char **argv)
{
    BenchReport report("fig14_arg_counts", argc, argv);
    ProfileCache cache;

    TextTable table(
        "Figure 14: checked-argument-count distribution "
        "(syscall counts per #args; median)");
    table.setHeader({"source", "0", "1", "2", "3", "4", "5", "6",
                     "median"});

    // The full Linux interface, as used to size the SLB subtables.
    std::vector<unsigned> linuxCounts;
    for (const auto &desc : os::syscallTable())
        linuxCounts.push_back(desc.checkedArgCount());
    addDistributionRow(table, report, "linux", linuxCounts);

    for (const auto *app : benchWorkloads()) {
        const auto &profile = cache.get(*app).complete;
        std::vector<unsigned> counts;
        for (const auto &[sid, spec] :
             core::deriveCheckSpecs(profile)) {
            counts.push_back(spec.checksArguments() ? spec.argCount()
                                                    : 0);
        }
        addDistributionRow(table, report, app->name, counts);
    }
    table.print();
    return 0;
}
