/**
 * @file
 * Table II: the architectural configuration the hardware evaluation
 * models, printed from the actual simulator constants so the dump can
 * never drift from the implementation.
 */

#include "common.hh"

using namespace draco;
using namespace draco::bench;

int
main(int argc, char **argv)
{
    BenchReport report("table2_config", argc, argv);
    sim::printMachineConfig();

    // Sanity: the SLB geometry the engine instantiates matches the
    // printed configuration.
    core::Slb slb;
    TextTable table("SLB subtables as instantiated");
    table.setHeader({"args", "entries", "ways", "sets"});
    for (unsigned args = 1; args <= core::Slb::kMaxArgc; ++args) {
        const auto &geom = slb.geometry(args);
        table.addRow({std::to_string(args), std::to_string(geom.entries),
                      std::to_string(geom.ways),
                      std::to_string(geom.sets())});

        std::string prefix =
            "config.slb.args_" + std::to_string(args);
        report.registry().setCounter(
            MetricRegistry::join(prefix, "entries"), geom.entries);
        report.registry().setCounter(
            MetricRegistry::join(prefix, "ways"), geom.ways);
    }
    report.registry().setCounter("config.stb.entries",
                                 core::Stb::kEntries);
    report.registry().setCounter("config.spt.entries",
                                 core::HardwareSpt::kEntries);
    report.registry().setCounter(
        "config.temporary_buffer.entries",
        core::TemporaryBuffer::kEntries);
    table.print();
    return 0;
}
