/**
 * @file
 * Table II: the architectural configuration the hardware evaluation
 * models, printed from the actual simulator constants so the dump can
 * never drift from the implementation.
 */

#include "common.hh"

using namespace draco;

int
main()
{
    sim::printMachineConfig();

    // Sanity: the SLB geometry the engine instantiates matches the
    // printed configuration.
    core::Slb slb;
    TextTable table("SLB subtables as instantiated");
    table.setHeader({"args", "entries", "ways", "sets"});
    for (unsigned argc = 1; argc <= core::Slb::kMaxArgc; ++argc) {
        const auto &geom = slb.geometry(argc);
        table.addRow({std::to_string(argc), std::to_string(geom.entries),
                      std::to_string(geom.ways),
                      std::to_string(geom.sets())});
    }
    table.print();
    return 0;
}
