/**
 * @file
 * Figure 11: software Draco vs conventional Seccomp for the three
 * application-specific profile configurations, normalized to insecure.
 *
 * Paper shape: with syscall-complete, macro/micro drop from 1.14×/1.25×
 * (Seccomp) to 1.10×/1.18× (DracoSW); with complete-2x from 1.21×/1.42×
 * to 1.10×/1.23× — software Draco's cost grows only modestly with
 * filter size because validated calls skip the filter entirely.
 */

#include "common.hh"

using namespace draco;
using namespace draco::bench;

int
main(int argc, char **argv)
{
    BenchReport report("fig11_draco_software", argc, argv);
    ProfileCache cache;

    auto column = [&](ProfileKind kind, sim::Mechanism mech) {
        return [&, kind, mech](const workload::AppModel &app) {
            return runExperiment(app, kind, mech, cache);
        };
    };

    using M = sim::Mechanism;
    printNormalizedFigure(
        "Figure 11: software Draco vs Seccomp "
        "(normalized to insecure; Ubuntu 18.04 / Linux 5.3 stack)",
        {
            {"noargs(Seccomp)", column(ProfileKind::Noargs, M::Seccomp)},
            {"noargs(DracoSW)", column(ProfileKind::Noargs, M::DracoSW)},
            {"complete(Seccomp)",
             column(ProfileKind::Complete, M::Seccomp)},
            {"complete(DracoSW)",
             column(ProfileKind::Complete, M::DracoSW)},
            {"complete-2x(Seccomp)",
             column(ProfileKind::Complete2x, M::Seccomp)},
            {"complete-2x(DracoSW)",
             column(ProfileKind::Complete2x, M::DracoSW)},
        },
        &report);
    return 0;
}
