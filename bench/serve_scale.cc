/**
 * @file
 * dracod connection-scale soak: p99 latency and shed rate versus
 * concurrent connection count, through the real epoll frontend.
 *
 * Unlike serve_throughput (which measures the CheckService in
 * process), this bench exercises the full wire path: a SocketServer
 * listening on TCP 127.0.0.1:0 with its fixed event-loop pool, and a
 * sweep of {64, 256, 1024} concurrent client connections pipelining
 * CheckBatch frames open-loop (a bounded per-connection window, no
 * lock-stepping). 16 tenants are shared round-robin across the
 * connections, so tenant admission caps and shard queue bounds apply
 * exactly as they would to that many containers.
 *
 * A small fixed pool of driver threads owns the client side — each
 * thread polls its share of connections with epoll and drains replies
 * with non-blocking reads — so neither side of the soak spawns
 * per-connection threads: the whole experiment runs thousands of
 * sockets on a handful of threads, which is the point of the event
 * loop.
 *
 * For each sweep cell the table reports wall QPS, batch-latency
 * p50/p99 (send-to-verdict, µs), and the shed rate (Overloaded
 * verdicts / total). After every cell the clients disconnect and the
 * bench waits for the server to reap every connection — a leak check
 * riding along with the latency curve.
 *
 * JSON artifact: `sweep.c<conns>.{latency_us.p50,latency_us.p99,
 * shed_rate,wall_qps,connections,reaped}` plus
 * `figure.max_connections` (CI asserts ≥ 1000) and
 * `figure.server_threads` (event loops + shards: the server-side
 * thread bound, independent of connection count). Latency and QPS are
 * measured, so this artifact is not byte-stable across runs.
 */

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>
#include <unordered_map>
#include <vector>

#include <sys/socket.h>

#include "common.hh"
#include "serve/server.hh"
#include "serve/service.hh"
#include "serve/wire.hh"
#include "support/epoll.hh"

using namespace draco;
using namespace draco::bench;
namespace wire = draco::serve::wire;

namespace {

constexpr unsigned kTenants = 16;
constexpr uint32_t kBatchReqs = 16;  ///< Requests per CheckBatch frame.
constexpr uint32_t kWindow = 4;      ///< Outstanding batches per conn.
constexpr unsigned kDrivers = 4;     ///< Client-side poll threads.

double
elapsedSeconds(std::chrono::steady_clock::time_point since)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - since)
        .count();
}

/** Per-tenant request streams, shared by every sweep cell. */
std::vector<std::vector<os::SyscallRequest>>
makeTraffic()
{
    const auto &apps = benchWorkloads();
    const size_t perTenant =
        std::max<size_t>(kBatchReqs, benchCalls() / kTenants);
    std::vector<std::vector<os::SyscallRequest>> out(kTenants);
    for (unsigned t = 0; t < kTenants; ++t) {
        const workload::AppModel &app = *apps[t % apps.size()];
        workload::TraceGenerator gen(app,
                                     splitSeed(workloadSeed(app), t));
        workload::Trace trace = gen.generate(perTenant);
        out[t].reserve(trace.size());
        for (const workload::TraceEvent &ev : trace)
            out[t].push_back(ev.req);
    }
    return out;
}

/** One soak connection: a pipelined window of CheckBatch frames. */
struct SoakConn {
    std::unique_ptr<serve::SocketClient> client;
    unsigned tenant = 0;
    serve::TenantId tenantId = serve::kInvalidTenant;
    wire::FrameParser parser;
    /** batchId → send time of in-flight batches. */
    std::unordered_map<uint64_t, std::chrono::steady_clock::time_point>
        inflight;
    uint64_t sent = 0;    ///< Batches sent so far.
    uint64_t done = 0;    ///< Batches answered so far.
    uint64_t quota = 0;   ///< Batches this connection must complete.
    size_t cursor = 0;    ///< Position in the tenant's stream.
    bool dead = false;
};

struct CellResult {
    QuantileSketch latencyUs;
    uint64_t responses = 0;
    uint64_t shedResponses = 0;
    uint64_t batches = 0;
    double wallSeconds = 0.0;
    uint64_t reaped = 0;
};

/** Driver-thread accumulator, merged after the join. */
struct DriverStats {
    QuantileSketch latencyUs;
    uint64_t responses = 0;
    uint64_t shedResponses = 0;
    uint64_t batches = 0;
    uint64_t deadConns = 0;
};

/** Send one batch on @p conn; false on transport failure. */
bool
sendBatch(SoakConn &conn,
          const std::vector<os::SyscallRequest> &stream,
          uint64_t batchId)
{
    wire::CheckBatch msg;
    msg.batchId = batchId;
    msg.tenantId = conn.tenantId;
    if (conn.cursor + kBatchReqs > stream.size())
        conn.cursor = 0;
    msg.reqs.assign(stream.begin() +
                        static_cast<ptrdiff_t>(conn.cursor),
                    stream.begin() +
                        static_cast<ptrdiff_t>(conn.cursor + kBatchReqs));
    conn.cursor += kBatchReqs;
    std::vector<uint8_t> payload;
    wire::encode(payload, msg);
    conn.inflight.emplace(batchId, std::chrono::steady_clock::now());
    ++conn.sent;
    return wire::writeFrame(conn.client->fd(), payload);
}

/**
 * Drain whatever replies are available on @p conn without blocking.
 *
 * @return false when the connection died.
 */
bool
drainReplies(SoakConn &conn, DriverStats &stats)
{
    uint8_t chunk[16 * 1024];
    for (;;) {
        ssize_t r = ::recv(conn.client->fd(), chunk, sizeof(chunk),
                           MSG_DONTWAIT);
        if (r == 0)
            return false;
        if (r < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return true;
            if (errno == EINTR)
                continue;
            return false;
        }
        conn.parser.append(chunk, static_cast<size_t>(r));
        std::vector<uint8_t> payload;
        for (;;) {
            auto res = conn.parser.next(payload);
            if (res == wire::FrameParser::Result::Need)
                break;
            if (res == wire::FrameParser::Result::Corrupt)
                return false;
            wire::CheckBatchReply reply;
            if (!wire::decode(payload, reply))
                return false;
            auto it = conn.inflight.find(reply.batchId);
            if (it == conn.inflight.end())
                return false;
            stats.latencyUs.add(elapsedSeconds(it->second) * 1e6);
            conn.inflight.erase(it);
            ++conn.done;
            ++stats.batches;
            for (const serve::CheckResponse &resp : reply.resps) {
                ++stats.responses;
                if (resp.status == serve::CheckStatus::Overloaded)
                    ++stats.shedResponses;
            }
        }
        if (r < static_cast<ssize_t>(sizeof(chunk)))
            return true;
    }
}

CellResult
runCell(serve::SocketServer &server, serve::CheckService &service,
        const std::vector<std::vector<os::SyscallRequest>> &traffic,
        const std::vector<serve::TenantId> &ids, size_t conns)
{
    const std::string address =
        "127.0.0.1:" + std::to_string(server.tcpPort());
    const uint64_t reapedBefore = server.connectionsReaped();

    // Dial every connection up front; the soak measures steady state,
    // not connection setup.
    std::vector<SoakConn> pool(conns);
    const uint64_t quota = std::max<uint64_t>(
        2, benchCalls() / (conns * kBatchReqs));
    for (size_t c = 0; c < conns; ++c) {
        SoakConn &conn = pool[c];
        conn.client = serve::SocketClient::connectTcp(address);
        if (!conn.client)
            fatal("serve_scale: connect %zu/%zu failed", c, conns);
        conn.tenant = static_cast<unsigned>(c % kTenants);
        conn.tenantId = ids[conn.tenant];
        conn.quota = quota;
        // Spread each tenant's connections across its stream so they
        // do not all replay the same prefix.
        const size_t stream = traffic[conn.tenant].size();
        const size_t span =
            stream > kBatchReqs ? stream - kBatchReqs : 1;
        conn.cursor = (c / kTenants) * kBatchReqs * quota % span;
    }

    std::vector<DriverStats> stats(kDrivers);
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> drivers;
    drivers.reserve(kDrivers);
    for (unsigned d = 0; d < kDrivers; ++d) {
        drivers.emplace_back([&, d] {
            // This driver owns connections d, d+kDrivers, ... — no
            // sharing, so no locks. Replies are polled with epoll and
            // drained non-blocking; sends are small bounded windows on
            // a blocking fd, which the kernel buffers absorb.
            support::Epoll epoll;
            std::vector<SoakConn *> mine;
            for (size_t c = d; c < pool.size(); c += kDrivers)
                mine.push_back(&pool[c]);
            for (SoakConn *conn : mine)
                epoll.add(conn->client->fd(), EPOLLIN, conn);
            std::vector<epoll_event> events;
            for (;;) {
                bool busy = false;
                for (SoakConn *conn : mine) {
                    if (conn->dead)
                        continue;
                    if (!drainReplies(*conn, stats[d])) {
                        conn->dead = true;
                        ++stats[d].deadConns;
                        continue;
                    }
                    while (conn->sent < conn->quota &&
                           conn->inflight.size() < kWindow) {
                        busy = true;
                        // batchIds need only be unique per connection.
                        if (!sendBatch(*conn, traffic[conn->tenant],
                                       conn->sent + 1)) {
                            conn->dead = true;
                            ++stats[d].deadConns;
                            break;
                        }
                    }
                }
                bool pending = false;
                for (SoakConn *conn : mine)
                    if (!conn->dead && conn->done < conn->quota)
                        pending = true;
                if (!pending)
                    break;
                if (!busy)
                    epoll.wait(events, 10);
            }
        });
    }
    for (std::thread &driver : drivers)
        driver.join();

    CellResult cell;
    cell.wallSeconds = elapsedSeconds(t0);
    uint64_t dead = 0;
    for (DriverStats &s : stats) {
        cell.latencyUs.merge(s.latencyUs);
        cell.responses += s.responses;
        cell.shedResponses += s.shedResponses;
        cell.batches += s.batches;
        dead += s.deadConns;
    }
    if (dead > 0)
        fatal("serve_scale: %llu connections died mid-soak",
              static_cast<unsigned long long>(dead));

    // Disconnect everything and wait for the server to reap each
    // connection: the leak check. The service must still be healthy.
    for (SoakConn &conn : pool)
        conn.client.reset();
    const auto reapStart = std::chrono::steady_clock::now();
    while (server.activeConnections() != 0) {
        if (elapsedSeconds(reapStart) > 30.0)
            fatal("serve_scale: %u connections still alive %.0fs after "
                  "disconnect",
                  server.activeConnections(),
                  elapsedSeconds(reapStart));
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    cell.reaped = server.connectionsReaped() - reapedBefore;
    if (cell.reaped < conns)
        fatal("serve_scale: reaped %llu of %zu connections",
              static_cast<unsigned long long>(cell.reaped), conns);
    if (service.shards() == 0)
        fatal("serve_scale: service lost its shards");
    return cell;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchReport report("serve_scale", argc, argv);

    // Both ends of every connection live in this process, so a 1024-
    // connection cell needs >2048 fds; CI runners default to 1024.
    support::raiseFdLimit(16384);

    const auto traffic = makeTraffic();

    serve::ServiceOptions serviceOptions;
    serviceOptions.shards = 2;
    serviceOptions.queueCapacity = 4096;
    serviceOptions.maxBatch = 64;
    const os::KernelCosts costs = os::newKernelCosts();
    serviceOptions.costs = &costs;
    serve::CheckService service(serviceOptions);

    serve::ServerOptions serverOptions;
    serverOptions.tcpAddress = "127.0.0.1:0";
    serverOptions.eventThreads = 2;
    serve::SocketServer server(service, serverOptions);
    if (!server.start())
        fatal("serve_scale: server start failed");

    static const seccomp::Profile profile =
        seccomp::dockerDefaultProfile();
    std::vector<serve::TenantId> ids(kTenants);
    for (unsigned t = 0; t < kTenants; ++t) {
        ids[t] = service.createTenant("t" + std::to_string(t), profile);
        if (ids[t] == serve::kInvalidTenant)
            fatal("serve_scale: createTenant failed");
    }

    const std::vector<size_t> connCounts = {64, 256, 1024};
    TextTable table("dracod connection scale (TCP, " +
                    std::to_string(kTenants) + " tenants, window " +
                    std::to_string(kWindow) + ")");
    table.setHeader({"conns", "batches", "wall_qps", "p50_us", "p99_us",
                     "shed_rate", "reaped"});

    size_t maxConns = 0;
    for (size_t conns : connCounts) {
        CellResult cell = runCell(server, service, traffic, ids, conns);
        maxConns = std::max(maxConns, conns);
        const double qps =
            cell.wallSeconds > 0.0
                ? static_cast<double>(cell.responses) / cell.wallSeconds
                : 0.0;
        const double shedRate =
            cell.responses > 0
                ? static_cast<double>(cell.shedResponses) /
                      static_cast<double>(cell.responses)
                : 0.0;
        table.addRow({std::to_string(conns),
                      std::to_string(cell.batches),
                      TextTable::num(qps, 0),
                      TextTable::num(cell.latencyUs.quantile(0.50), 1),
                      TextTable::num(cell.latencyUs.quantile(0.99), 1),
                      TextTable::num(shedRate, 4),
                      std::to_string(cell.reaped)});

        MetricRegistry &registry = report.registry();
        const std::string prefix = "sweep.c" + std::to_string(conns);
        registry.setCounter(MetricRegistry::join(prefix, "connections"),
                            conns);
        registry.setCounter(MetricRegistry::join(prefix, "batches"),
                            cell.batches);
        registry.setCounter(MetricRegistry::join(prefix, "responses"),
                            cell.responses);
        registry.setCounter(MetricRegistry::join(prefix, "reaped"),
                            cell.reaped);
        registry.setGauge(MetricRegistry::join(prefix, "wall_qps"), qps);
        registry.setGauge(
            MetricRegistry::join(prefix, "wall_seconds"),
            cell.wallSeconds);
        registry.setGauge(MetricRegistry::join(prefix, "shed_rate"),
                          shedRate);
        registry.setGauge(
            MetricRegistry::join(prefix, "latency_us.p50"),
            cell.latencyUs.quantile(0.50));
        registry.setGauge(
            MetricRegistry::join(prefix, "latency_us.p99"),
            cell.latencyUs.quantile(0.99));
    }
    table.print();

    MetricRegistry &registry = report.registry();
    registry.setCounter("figure.max_connections", maxConns);
    registry.setCounter("figure.server_threads",
                        serverOptions.eventThreads +
                            serviceOptions.shards);
    registry.setCounter("figure.driver_threads", kDrivers);

    server.stop();
    service.stop();
    return 0;
}
