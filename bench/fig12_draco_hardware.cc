/**
 * @file
 * Figure 12: hardware Draco under the three profile configurations,
 * normalized to insecure.
 *
 * Paper shape: within 1% of insecure for every workload and every
 * profile, including syscall-complete-2x.
 */

#include "common.hh"

using namespace draco;
using namespace draco::bench;

int
main(int argc, char **argv)
{
    BenchReport report("fig12_draco_hardware", argc, argv);
    ProfileCache cache;

    auto column = [&](ProfileKind kind) {
        return [&, kind](const workload::AppModel &app) {
            sim::Mechanism mech = kind == ProfileKind::Insecure
                ? sim::Mechanism::Insecure
                : sim::Mechanism::DracoHW;
            return runExperiment(app, kind, mech, cache);
        };
    };

    printNormalizedFigure(
        "Figure 12: hardware Draco (normalized to insecure)",
        {
            {"insecure", column(ProfileKind::Insecure)},
            {"noargs(DracoHW)", column(ProfileKind::Noargs)},
            {"complete(DracoHW)", column(ProfileKind::Complete)},
            {"complete-2x(DracoHW)", column(ProfileKind::Complete2x)},
        },
        &report);
    return 0;
}
