/**
 * @file
 * Ablation: context-switch handling (§VII-B).
 *
 * Sweeps the scheduling quantum with the Accessed-bit SPT save/restore
 * mitigation on and off. Invalidation on every switch is required for
 * isolation; the mitigation recovers the SPT warm-up cost, and at
 * realistic (millisecond) quanta hardware Draco's restart penalty is
 * negligible either way.
 */

#include "common.hh"

using namespace draco;
using namespace draco::bench;

int
main(int argc, char **argv)
{
    BenchReport report("ablation_ctxswitch", argc, argv);
    std::vector<const workload::AppModel *> procs = {
        workload::workloadByName("nginx"),
        workload::workloadByName("redis"),
        workload::workloadByName("pipe-ipc"),
    };

    TextTable table("Context-switch ablation (3 processes round-robin, "
                    "hardware Draco, syscall-complete)");
    table.setHeader({"quantum-us", "spt-save-restore", "switches",
                     "normalized", "spt-restored"});

    const double quanta[] = {50.0, 200.0, 1000.0, 5000.0};
    const bool modes[] = {true, false};
    std::vector<sim::SchedResult> results(std::size(quanta) *
                                          std::size(modes));
    parallelCells(
        results.size(),
        [&](size_t idx, MetricRegistry &shard) {
            double quantumUs = quanta[idx / std::size(modes)];
            bool saveRestore = modes[idx % std::size(modes)];
            sim::SchedOptions options;
            options.quantumNs = quantumUs * 1000.0;
            options.sptSaveRestore = saveRestore;
            options.totalCalls = bench::benchCalls();
            options.seed = kBenchSeed;
            sim::MultiProcessSimulator sim;
            sim::SchedResult r = sim.run(procs, options);

            std::string prefix = "runs.quantum_us_" +
                std::to_string(static_cast<unsigned>(quantumUs)) +
                (saveRestore ? ".save_restore_on"
                             : ".save_restore_off");
            shard.setCounter(
                MetricRegistry::join(prefix, "context_switches"),
                r.contextSwitches);
            shard.setGauge(MetricRegistry::join(prefix, "normalized"),
                           r.normalized());
            core::exportStats(r.hw, shard,
                              MetricRegistry::join(prefix, "hw"));
            results[idx] = std::move(r);
        },
        &report);

    for (size_t idx = 0; idx < results.size(); ++idx) {
        const sim::SchedResult &r = results[idx];
        table.addRow({
            TextTable::num(quanta[idx / std::size(modes)], 0),
            modes[idx % std::size(modes)] ? "on" : "off",
            std::to_string(r.contextSwitches),
            TextTable::num(r.normalized(), 4),
            std::to_string(r.hw.sptRestoredEntries),
        });
    }
    table.print();
    return 0;
}
