/**
 * @file
 * Figure 2: latency/execution time of the fifteen workloads under the
 * five Seccomp profile configurations, normalized to insecure.
 *
 * Paper shape: docker-default ≈1.05× (macro) / 1.12× (micro);
 * syscall-noargs ≈1.04× / 1.09×; syscall-complete ≈1.14× / 1.25×;
 * syscall-complete-2x ≈1.21× / 1.42×.
 */

#include "common.hh"

using namespace draco;
using namespace draco::bench;

int
main(int argc, char **argv)
{
    BenchReport report("fig02_seccomp_overhead", argc, argv);
    ProfileCache cache;

    auto column = [&](ProfileKind kind) {
        return [&, kind](const workload::AppModel &app) {
            sim::Mechanism mech = kind == ProfileKind::Insecure
                ? sim::Mechanism::Insecure
                : sim::Mechanism::Seccomp;
            return runExperiment(app, kind, mech, cache);
        };
    };

    printNormalizedFigure(
        "Figure 2: Seccomp overhead by profile "
        "(normalized to insecure; Ubuntu 18.04 / Linux 5.3 stack)",
        {
            {"insecure", column(ProfileKind::Insecure)},
            {"docker-default", column(ProfileKind::DockerDefault)},
            {"syscall-noargs", column(ProfileKind::Noargs)},
            {"syscall-complete", column(ProfileKind::Complete)},
            {"syscall-complete-2x", column(ProfileKind::Complete2x)},
        },
        &report);
    return 0;
}
