/**
 * @file
 * Extension: overhead of the real-world built-in profiles (§II-C) side
 * by side — docker-default, the gVisor host filter, and the Firecracker
 * microVM filter — under plain Seccomp and both Draco implementations.
 *
 * Narrow whitelists deny more (gVisor/Firecracker kill calls our
 * workloads legitimately make), so this bench runs them against the
 * workloads whose syscall footprint they actually cover and reports
 * both cost and denial rate.
 */

#include "common.hh"

using namespace draco;
using namespace draco::bench;

int
main(int argc, char **argv)
{
    BenchReport report("profile_comparison", argc, argv);
    struct Case {
        const char *profileName;
        seccomp::Profile profile;
    };
    Case cases[] = {
        {"docker-default", seccomp::dockerDefaultProfile()},
        {"gvisor-host", seccomp::gvisorProfile()},
        {"firecracker", seccomp::firecrackerProfile()},
    };

    TextTable table("Built-in profile comparison (pipe-ipc; normalized "
                    "to insecure; denial rate of the workload's calls)");
    table.setHeader({"profile", "syscalls", "arg-values",
                     "seccomp", "draco-sw", "draco-hw", "denied%"});

    const auto *app = workload::workloadByName("pipe-ipc");
    sim::ExperimentRunner runner;

    for (auto &c : cases) {
        auto stats = c.profile.stats();

        auto runWith = [&](sim::Mechanism mech) {
            sim::RunOptions options;
            options.mechanism = mech;
            options.steadyCalls = benchCalls() / 2;
            options.seed = kBenchSeed;
            return runner.run(*app, c.profile, options);
        };
        auto seccompRun = runWith(sim::Mechanism::Seccomp);
        auto swRun = runWith(sim::Mechanism::DracoSW);
        auto hwRun = runWith(sim::Mechanism::DracoHW);

        // Denial rate measured directly against the profile.
        workload::TraceGenerator gen(*app, kBenchSeed);
        uint64_t denied = 0, total = 20000;
        for (uint64_t i = 0; i < total; ++i)
            denied += !c.profile.allows(gen.next().req);

        std::string seg = MetricRegistry::sanitize(c.profileName);
        report.record(seg + ".seccomp", seccompRun);
        report.record(seg + ".draco_sw", swRun);
        report.record(seg + ".draco_hw", hwRun);
        report.registry().setGauge(
            MetricRegistry::join("runs." + seg, "denial_rate"),
            static_cast<double>(denied) / static_cast<double>(total));

        table.addRow({
            c.profileName,
            std::to_string(stats.syscallsAllowed),
            std::to_string(stats.valuesAllowed),
            TextTable::num(seccompRun.normalized(), 3),
            TextTable::num(swRun.normalized(), 3),
            TextTable::num(hwRun.normalized(), 3),
            TextTable::num(100.0 * denied / total, 2),
        });
    }
    table.print();

    std::printf("narrower whitelists are cheaper to scan but deny more; "
                "Draco removes the cost axis of that trade-off.\n");
    return 0;
}
